// Recovery manager: durable phase barriers and partial recovery. The
// FUDJ pipeline has two natural barriers — after SUMMARIZE (the
// partitioning plan is broadcast) and after PARTITION (every record
// sits in its destination partition's bucket input) — and a node lost
// *at* a barrier only needs the work downstream of it replayed. The
// manager classifies each loss by the barrier it occurred at, reloads
// checkpointed state for the lost partitions when a checkpoint store
// is attached, and reports a retryable BarrierLossError otherwise so
// the caller can fall back to abort-and-rerun of the whole join step.
//
// Corruption healing: a checkpoint that fails its integrity check on
// reopen (torn write, bit flip) is discarded and the partition's state
// is recomputed from the surviving upstream inputs — recovery may cost
// more, but it never produces different results.
package cluster

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"fudj/internal/storage"
	"fudj/internal/types"
)

// Barrier names a durable phase barrier of the FUDJ pipeline.
type Barrier int

const (
	// BarrierPlan is crossed after SUMMARIZE: the partitioning plan has
	// been broadcast, so a node lost here re-reads the durable plan
	// instead of re-running SUMMARIZE.
	BarrierPlan Barrier = iota + 1
	// BarrierShuffle is crossed after PARTITION: every partition's
	// post-shuffle bucket inputs are durable, so a node lost here
	// reloads its partitions' inputs and re-runs only their COMBINE.
	BarrierShuffle
)

// String implements fmt.Stringer.
func (b Barrier) String() string {
	switch b {
	case BarrierPlan:
		return "plan"
	case BarrierShuffle:
		return "shuffle"
	}
	return fmt.Sprintf("barrier(%d)", int(b))
}

// Class reports the failure class a loss at this barrier falls into:
// pre-shuffle losses replay SUMMARIZE+PARTITION work, post-shuffle
// losses replay only COMBINE work.
func (b Barrier) Class() string {
	if b >= BarrierShuffle {
		return "post-shuffle"
	}
	return "pre-shuffle"
}

// BarrierLossError reports nodes lost at a phase barrier when no
// checkpoint store is attached to recover them in place. It is
// retryable: the caller re-runs the join step from the top
// (abort-and-rerun), which is exactly the waste checkpointing avoids.
type BarrierLossError struct {
	Barrier Barrier
	Nodes   []int
	Parts   []int
}

// Error implements the error interface.
func (e *BarrierLossError) Error() string {
	return fmt.Sprintf("cluster: %d node(s) %v lost at %s barrier (%s), partitions %v",
		len(e.Nodes), e.Nodes, e.Barrier, e.Barrier.Class(), e.Parts)
}

// Retryable marks the loss as transient: rerunning the step succeeds.
func (e *BarrierLossError) Retryable() bool { return true }

// RecoveryManager tracks per-partition phase completion for one query
// and drives barrier-scoped recovery. A nil checkpoint store disables
// durability: barriers still fire injected kills, but losses surface
// as BarrierLossError instead of being healed in place.
type RecoveryManager struct {
	c     *Cluster
	store *storage.CheckpointStore

	mu   sync.Mutex
	done map[string]map[int]bool // phase name -> completed partitions
}

// NewRecoveryManager attaches a recovery manager to the cluster.
// store may be nil (checkpointing disabled).
func (c *Cluster) NewRecoveryManager(store *storage.CheckpointStore) *RecoveryManager {
	return &RecoveryManager{c: c, store: store, done: make(map[string]map[int]bool)}
}

// Enabled reports whether a checkpoint store is attached.
func (rm *RecoveryManager) Enabled() bool { return rm != nil && rm.store != nil }

// MarkDone records that phase completed for partition part. Marking is
// idempotent, so retried task attempts are safe.
func (rm *RecoveryManager) MarkDone(phase string, part int) {
	if rm == nil {
		return
	}
	rm.mu.Lock()
	m := rm.done[phase]
	if m == nil {
		m = make(map[int]bool)
		rm.done[phase] = m
	}
	m[part] = true
	rm.mu.Unlock()
}

// DoneCount returns how many partitions completed the phase.
func (rm *RecoveryManager) DoneCount(phase string) int {
	if rm == nil {
		return 0
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return len(rm.done[phase])
}

// PhaseDone reports whether the phase completed for partition part.
func (rm *RecoveryManager) PhaseDone(phase string, part int) bool {
	if rm == nil {
		return false
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.done[phase][part]
}

// CheckpointBlob persists one opaque blob (e.g. the encoded PPlan)
// under key, charging checkpoint.bytes and then applying any injected
// damage to the published file. A nil/disabled manager is a no-op.
func (rm *RecoveryManager) CheckpointBlob(key string, blob []byte) error {
	if !rm.Enabled() {
		return nil
	}
	n, err := rm.store.SaveBlob(key, blob)
	if err != nil {
		return err
	}
	rm.c.metrics.addCheckpointBytes(n)
	return rm.applyDamage(key)
}

// CheckpointRecords persists one partition's record batch under key.
func (rm *RecoveryManager) CheckpointRecords(key string, recs []types.Record) error {
	if !rm.Enabled() {
		return nil
	}
	n, err := rm.store.SaveRecords(key, recs)
	if err != nil {
		return err
	}
	rm.c.metrics.addCheckpointBytes(n)
	return rm.applyDamage(key)
}

// applyDamage asks the fault injector whether the just-published
// checkpoint suffers a torn write (tail truncated, terminator lost) or
// a bit flip, and damages the file accordingly. The damage is real —
// the reopen path must detect it through the format's own checks.
func (rm *RecoveryManager) applyDamage(key string) error {
	fi := rm.c.faults
	if fi == nil {
		return nil
	}
	switch fi.checkpointDamage(key) {
	case damageTorn:
		path := rm.store.Path(key)
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		return os.Truncate(path, info.Size()/2)
	case damageCorrupt:
		path := rm.store.Path(key)
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		off := fi.damageOffset(key, info.Size(), 8)
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			return err
		}
		b[0] ^= 0x10
		_, err = f.WriteAt(b[:], off)
		return err
	}
	return nil
}

// CrossBarrier marks execution crossing barrier b and returns the
// partitions wiped by injected node deaths, sorted ascending. When
// the trace is on, the crossing emits a "barrier <name>" span carrying
// the loss so recovery shows up in the query tree.
func (rm *RecoveryManager) CrossBarrier(b Barrier) (lostParts []int) {
	if rm == nil {
		return nil
	}
	fi := rm.c.faults
	if fi == nil || !fi.hasBarrierFaults() {
		return nil
	}
	nodes := fi.killAtBarrier(rm.c.nextEpoch(), b, rm.c.cfg.Nodes)
	if len(nodes) == 0 {
		return nil
	}
	for _, n := range nodes {
		for core := 0; core < rm.c.cfg.CoresPerNode; core++ {
			lostParts = append(lostParts, n*rm.c.cfg.CoresPerNode+core)
		}
	}
	sort.Ints(lostParts)
	rm.c.metrics.addBarrierKills(int64(len(nodes)))
	sp := rm.c.span.Child("barrier " + b.String())
	sp.Add("nodes.lost", int64(len(nodes)))
	sp.Add("parts.lost", int64(len(lostParts)))
	sp.End()
	return lostParts
}

// LossError builds the abort-and-rerun error for partitions lost at b
// with no checkpoint store to heal them.
func (rm *RecoveryManager) LossError(b Barrier, lostParts []int) error {
	nodes := make(map[int]bool)
	for _, p := range lostParts {
		nodes[rm.c.NodeOf(p)] = true
	}
	ns := make([]int, 0, len(nodes))
	for n := range nodes {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	return &BarrierLossError{Barrier: b, Nodes: ns, Parts: lostParts}
}

// RecoverRecords restores one lost partition's record batch: from the
// checkpoint under key when it reopens cleanly, or by calling
// recompute when the checkpoint is missing or fails its integrity
// check (which discards it). The reloaded bytes are charged against
// the budget-tracked memory gauge so recovery registers in PeakMemory.
// Each recovery emits a "recover" span under the current phase span.
func (rm *RecoveryManager) RecoverRecords(key string, part int, recompute func() ([]types.Record, error)) ([]types.Record, error) {
	if !rm.Enabled() {
		return nil, fmt.Errorf("cluster: recover %s: no checkpoint store attached", key)
	}
	sp := rm.c.span.Child("recover")
	defer sp.End()
	sp.Add("part", int64(part))
	recs, err := rm.store.LoadRecords(key)
	if err == nil {
		rm.c.metrics.addCheckpointRecovered()
		sp.Add("from.checkpoint", 1)
		n := types.RecordsMemSize(recs)
		rm.c.metrics.ReserveMemory(n)
		rm.c.metrics.ReleaseMemory(n)
		return recs, nil
	}
	if err := rm.discardDamaged(key, err); err != nil {
		return nil, err
	}
	sp.Add("from.recompute", 1)
	return recompute()
}

// RecoverBlob restores a lost blob checkpoint (the broadcast plan) for
// the given lost partitions, falling back to fallback when the
// checkpoint is missing or corrupt. Every lost partition counts as
// recovered-from-checkpoint when the reload succeeds.
func (rm *RecoveryManager) RecoverBlob(key string, parts []int, fallback func() ([]byte, error)) ([]byte, error) {
	if !rm.Enabled() {
		return nil, fmt.Errorf("cluster: recover %s: no checkpoint store attached", key)
	}
	sp := rm.c.span.Child("recover")
	defer sp.End()
	sp.Add("parts", int64(len(parts)))
	blob, err := rm.store.LoadBlob(key)
	if err == nil {
		for range parts {
			rm.c.metrics.addCheckpointRecovered()
		}
		sp.Add("from.checkpoint", 1)
		return blob, nil
	}
	if err := rm.discardDamaged(key, err); err != nil {
		return nil, err
	}
	sp.Add("from.recompute", 1)
	return fallback()
}

// discardDamaged handles a failed checkpoint load: corruption is
// counted, the damaged file removed, and nil returned so the caller
// recomputes; a missing checkpoint silently recomputes; any other
// error propagates.
func (rm *RecoveryManager) discardDamaged(key string, err error) error {
	var ce *storage.CorruptError
	switch {
	case errors.As(err, &ce):
		rm.c.metrics.addCheckpointDiscarded()
		return rm.store.Remove(key)
	case errors.Is(err, os.ErrNotExist):
		return nil
	default:
		return err
	}
}

// Sweep removes the checkpoint directory; called at query teardown so
// no checkpoint files outlive their query.
func (rm *RecoveryManager) Sweep() error {
	if rm == nil || rm.store == nil {
		return nil
	}
	return rm.store.Sweep()
}
