// Memory-bounded shuffle delivery. When a query carries a memory
// budget, cross-partition delivery stops buffering unboundedly:
// each destination partition gets a credit-accounted inbox sized to
// its share of the budget, senders must acquire credit before pushing
// a decoded batch (blocking — backpressure — when the receiver is
// behind), and batches larger than the receive window are split into
// bounded chunks instead of arriving as one oversized buffer. The
// drained records (the operator's materialized input) are tracked
// separately as PeakInput; the inbox credit models the receive-side
// working memory the budget actually bounds.
//
// Without a budget the original sequential delivery path runs
// unchanged, so unbudgeted queries pay zero overhead.
package cluster

import (
	"sync"

	"fudj/internal/types"
)

// SetMemoryBudget gives the cluster a total memory budget in bytes,
// split evenly across partitions. Zero (the default) disables all
// memory bounding.
func (c *Cluster) SetMemoryBudget(total int64) {
	if total < 0 {
		total = 0
	}
	c.memBudget = total
}

// MemoryBudget returns the total memory budget (0 = unbounded).
func (c *Cluster) MemoryBudget() int64 { return c.memBudget }

// PartitionBudget returns one partition's share of the memory budget,
// or 0 when no budget is set.
func (c *Cluster) PartitionBudget() int64 {
	if c.memBudget <= 0 {
		return 0
	}
	b := c.memBudget / int64(c.Partitions())
	if b < 1 {
		b = 1
	}
	return b
}

// inChunk is one delivered batch fragment awaiting drain.
type inChunk struct {
	src   int
	recs  []types.Record
	bytes int64
}

// inbox is a bounded receive buffer for one destination partition.
// Senders block in put when the undrained bytes would exceed the
// bound; the receiver drains chunks in arrival order, releasing
// credit, and reassembles per-source order afterwards so delivery
// stays deterministic.
type inbox struct {
	mu    sync.Mutex
	avail *sync.Cond // senders wait here for credit
	ready *sync.Cond // the receiver waits here for chunks
	bound int64
	bytes int64
	queue []inChunk
	open  int // senders that have not finished yet
	err   error
}

func newInbox(senders int, bound int64) *inbox {
	in := &inbox{bound: bound, open: senders}
	in.avail = sync.NewCond(&in.mu)
	in.ready = sync.NewCond(&in.mu)
	return in
}

// put delivers one chunk, blocking while the inbox lacks credit. An
// oversized chunk is admitted once the inbox is empty, so delivery
// always makes progress. Waits are counted as backpressure stalls.
func (in *inbox) put(src int, recs []types.Record, bytes int64, m *Metrics) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.err == nil && in.bytes > 0 && in.bytes+bytes > in.bound {
		m.addBackpressure()
		in.avail.Wait()
	}
	if in.err != nil {
		return in.err
	}
	in.bytes += bytes
	m.reserveMemory(bytes)
	in.queue = append(in.queue, inChunk{src: src, recs: recs, bytes: bytes})
	in.ready.Signal()
	return nil
}

// finish marks one sender as done with this destination.
func (in *inbox) finish() {
	in.mu.Lock()
	in.open--
	in.ready.Signal()
	in.mu.Unlock()
}

// take removes the oldest chunk. ok is false once every sender has
// finished and the queue is drained.
func (in *inbox) take(m *Metrics) (ch inChunk, ok bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.err == nil && len(in.queue) == 0 && in.open > 0 {
		in.ready.Wait()
	}
	if in.err != nil {
		return inChunk{}, false, in.err
	}
	if len(in.queue) == 0 {
		return inChunk{}, false, nil
	}
	ch = in.queue[0]
	in.queue = in.queue[1:]
	in.bytes -= ch.bytes
	m.releaseMemory(ch.bytes)
	in.avail.Broadcast()
	return ch, true, nil
}

// cancel fails the inbox, waking every blocked sender and receiver.
func (in *inbox) cancel(err error) {
	in.mu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.avail.Broadcast()
	in.ready.Broadcast()
	in.mu.Unlock()
}

// deliverBounded is deliver with bounded inboxes: one sender goroutine
// per source pushes credit-accounted chunks, one receiver goroutine
// per destination drains them. Per-source chunk order is preserved and
// destinations reassemble sources in index order, so the delivered
// record order is identical to the sequential path.
func (c *Cluster) deliverBounded(outbox [][][]types.Record) (Data, error) {
	p := c.Partitions()
	ctx := c.context()
	fi := c.faults
	var epoch int64
	if fi != nil {
		epoch = c.nextEpoch()
	}
	maxAttempts := c.retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	bound := c.PartitionBudget()
	// Chunks target half the receive window so two senders can overlap;
	// a single record larger than that still travels (alone).
	chunkTarget := bound / 2
	if chunkTarget < 1 {
		chunkTarget = 1
	}

	inboxes := make([]*inbox, p)
	for i := range inboxes {
		inboxes[i] = newInbox(p, bound)
	}
	cancelAll := func(err error) {
		for _, in := range inboxes {
			in.cancel(err)
		}
	}
	// Cancellation watcher: a context abort unblocks every cond wait.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			cancelAll(ctx.Err())
		case <-stop:
		}
	}()

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancelAll(err)
	}

	var wg sync.WaitGroup
	for src := 0; src < p; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			enc, dec := c.pool.Get(0), c.pool.Get(0)
			defer c.pool.Put(enc)
			defer c.pool.Put(dec)
			for dst := 0; dst < p; dst++ {
				if batch := outbox[src][dst]; len(batch) > 0 {
					if err := c.sendBounded(epoch, src, dst, batch, inboxes[dst], chunkTarget, maxAttempts, enc, dec); err != nil {
						fail(err)
						return
					}
				}
				inboxes[dst].finish()
			}
		}(src)
	}

	out := c.NewData()
	for dst := 0; dst < p; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			perSrc := make([][]types.Record, p)
			for {
				ch, ok, err := inboxes[dst].take(c.metrics)
				if err != nil {
					return // firstErr / ctx carries the cause
				}
				if !ok {
					break
				}
				perSrc[ch.src] = append(perSrc[ch.src], ch.recs...)
			}
			var recs []types.Record
			var resident int64
			for src := 0; src < p; src++ {
				recs = append(recs, perSrc[src]...)
			}
			resident = types.RecordsMemSize(recs)
			c.metrics.notePartitionInput(resident)
			out[dst] = recs
		}(dst)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// sendBounded transfers one source→destination batch through the
// bounded inbox, splitting it into chunks no larger than chunkTarget
// estimated bytes and no longer than the cluster's frame row cap.
// Cross-node chunks travel as columnar frames, fault-injected and
// resent on corruption exactly like the sequential path. enc and dec
// are the sender's pooled scratch batches.
func (c *Cluster) sendBounded(epoch int64, src, dst int, batch []types.Record, in *inbox, chunkTarget int64, maxAttempts int, enc, dec *types.Batch) error {
	crossNode := c.NodeOf(src) != c.NodeOf(dst)
	lo := 0
	for chunkIdx := 0; lo < len(batch); chunkIdx++ {
		hi := lo
		var size int64
		windowSplit := false
		for hi < len(batch) && hi-lo < c.batchSize {
			sz := batch[hi].MemSize()
			if hi > lo && size+sz > chunkTarget {
				windowSplit = true
				break
			}
			size += sz
			hi++
		}
		if windowSplit {
			// The receive window forced this batch apart: backpressure
			// shaped the transfer. (Counted once per window-forced cut;
			// cuts at the frame row cap are ordinary framing, not
			// backpressure.)
			c.metrics.addBackpressure()
		}
		chunk := batch[lo:hi]
		lo = hi
		if crossNode {
			decoded, err := c.transferFrame(epoch, src, dst, chunk, int64(chunkIdx), maxAttempts, enc, dec)
			if err != nil {
				return err
			}
			chunk = decoded
			size = types.RecordsMemSize(chunk)
		}
		if err := in.put(src, chunk, size, c.metrics); err != nil {
			return err
		}
	}
	return nil
}
