package cluster

import (
	"testing"

	"fudj/internal/types"
)

// benchShuffleRecords builds the row shape ExchangeHash moves on the
// hash path for an equi-join COUNT(*): three int64 columns — bucket
// id, join key, and the row id.
func benchShuffleRecords(n int) []types.Record {
	recs := make([]types.Record, n)
	for i := range recs {
		recs[i] = types.Record{
			types.NewInt64(int64(i) % 512),
			types.NewInt64(int64(i) % 997),
			types.NewInt64(int64(i)),
		}
	}
	return recs
}

// BenchmarkCombineDeliver measures the COMBINE input edge of the hash
// path: delivering one partition's shuffled outbox across a node
// boundary — per-frame serialization, corruption bookkeeping, metrics,
// and record materialization on the receive side — at the default
// batch size against record-at-a-time framing (WithBatchSize(1), the
// pre-batching baseline).
func BenchmarkCombineDeliver(b *testing.B) {
	recs := benchShuffleRecords(60000)
	for _, arm := range []struct {
		name string
		bs   int
	}{{"batched", 0}, {"record", 1}} {
		b.Run(arm.name, func(b *testing.B) {
			c := New(Config{Nodes: 2, CoresPerNode: 1})
			c.SetBatchSize(arm.bs)
			outbox := make([][][]types.Record, c.Partitions())
			for src := range outbox {
				outbox[src] = make([][]types.Record, c.Partitions())
			}
			outbox[0][1] = recs // every record crosses the node boundary
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				out, err := c.deliver(outbox)
				if err != nil {
					b.Fatal(err)
				}
				if len(out[1]) != len(recs) {
					b.Fatal("row count mismatch")
				}
			}
		})
	}
}
