// Package cluster simulates the shared-nothing execution substrate the
// paper runs on (a 12-worker AsterixDB cluster). Data lives in
// partitions; partitions map onto nodes; every record that moves
// between partitions on *different* nodes is serialized through
// internal/wire and counted, so network volume and serde cost are real,
// measurable quantities rather than artifacts of in-process pointer
// passing.
//
// Parallelism model: the unit of parallel work is the partition. A
// cluster with N nodes and C cores per node runs N*C partitions, each
// processed by its own goroutine. Wall-clock speedup saturates at the
// host's physical cores, so the cluster also records per-partition busy
// time; MaxBusy approximates the makespan on ideal hardware and is what
// the scalability experiments report alongside wall time.
//
// Observability: cost counters live in the Metrics registry
// (metrics.go); when the engine attaches a trace span via SetSpan,
// every partition task and exchange emits a child span, so a traced
// query yields the full query → phase → task tree.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fudj/internal/trace"
	"fudj/internal/types"
)

// Config sizes the simulated cluster.
type Config struct {
	Nodes        int // number of shared-nothing nodes
	CoresPerNode int // worker partitions per node
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.CoresPerNode < 1 {
		return fmt.Errorf("cluster: need >=1 node and >=1 core, got %d/%d", c.Nodes, c.CoresPerNode)
	}
	return nil
}

// Partitions returns the total partition count (total parallelism).
func (c Config) Partitions() int { return c.Nodes * c.CoresPerNode }

// Data is a partitioned record set: one slice per partition.
type Data [][]types.Record

// Rows returns the total record count across partitions.
func (d Data) Rows() int {
	n := 0
	for _, p := range d {
		n += len(p)
	}
	return n
}

// Flatten concatenates all partitions (used at query output). The
// result is sized once via Rows() and filled with copy, so the
// result-collection hot path never regrows the slice.
func (d Data) Flatten() []types.Record {
	n := d.Rows()
	if n == 0 {
		return nil
	}
	out := make([]types.Record, n)
	off := 0
	for _, p := range d {
		off += copy(out[off:], p)
	}
	return out
}

// Cluster is one simulated deployment. It is safe for a single query
// at a time; the engine creates one per query execution so metrics are
// per-query.
type Cluster struct {
	cfg       Config
	metrics   *Metrics
	faults    *FaultInjector
	retry     RetryPolicy
	qctx      context.Context
	epoch     atomic.Int64
	memBudget int64 // total bytes across all partitions; 0 = unbounded
	batchSize int   // max rows per serialized shuffle frame
	pool      *types.BatchPool
	clock     trace.Clock
	span      *trace.Span // current parent span for cluster ops; nil = untraced
}

// DefaultBatchSize is the row cap for one serialized shuffle frame: a
// batch this size amortizes frame dispatch while a corruption resend
// only repeats one frame, not the whole transfer.
const DefaultBatchSize = 1024

// New builds a cluster, panicking on invalid configuration (a harness
// bug, not a runtime condition).
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cluster{
		cfg:       cfg,
		metrics:   newMetrics(cfg.Partitions()),
		retry:     DefaultRetryPolicy(),
		batchSize: DefaultBatchSize,
		pool:      types.NewBatchPool(),
		clock:     trace.WallClock{},
	}
}

// SetBatchSize caps the rows carried by one serialized shuffle frame.
// n = 1 degenerates to record-at-a-time framing (the batching-off
// baseline); n < 1 restores the default.
func (c *Cluster) SetBatchSize(n int) {
	if n < 1 {
		n = DefaultBatchSize
	}
	c.batchSize = n
}

// BatchSize returns the per-frame row cap.
func (c *Cluster) BatchSize() int { return c.batchSize }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Metrics returns the cluster's metric registry.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// SetClock replaces the clock used for busy-time accounting and span
// timestamps. The engine installs its own clock so execution packages
// never read time.Now directly.
func (c *Cluster) SetClock(clk trace.Clock) {
	if clk != nil {
		c.clock = clk
	}
}

// SetSpan installs the trace span subsequent cluster operations attach
// their task and exchange spans to, returning the previous span so
// callers can nest and restore. Cluster operations within one query
// run sequentially, so a plain swap is safe; a nil span disables task
// tracing.
func (c *Cluster) SetSpan(s *trace.Span) (prev *trace.Span) {
	prev = c.span
	c.span = s
	return prev
}

// SetFaults installs a fault injector for this cluster's lifetime.
// Install a fresh injector per query so fault decisions stay
// deterministic. A nil injector disables fault injection.
func (c *Cluster) SetFaults(fi *FaultInjector) { c.faults = fi }

// Faults returns the installed fault injector, or nil.
func (c *Cluster) Faults() *FaultInjector { return c.faults }

// SetRetryPolicy replaces the task retry policy.
func (c *Cluster) SetRetryPolicy(p RetryPolicy) {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	c.retry = p
}

// RetryPolicy returns the cluster's task retry policy, so recovery
// wrappers outside the package share its attempt budget.
func (c *Cluster) RetryPolicy() RetryPolicy { return c.retry }

// SetContext attaches a query context: cancellation or deadline expiry
// aborts in-flight partition tasks at their next checkpoint (injected
// delays and backoff sleeps abort immediately).
func (c *Cluster) SetContext(ctx context.Context) { c.qctx = ctx }

// context returns the attached query context, or Background.
func (c *Cluster) context() context.Context {
	if c.qctx != nil {
		return c.qctx
	}
	return context.Background()
}

// Err reports the attached context's cancellation state.
func (c *Cluster) Err() error { return c.context().Err() }

// nextEpoch returns a fresh fault epoch. Cluster operations within one
// query run sequentially, so the counter is deterministic.
func (c *Cluster) nextEpoch() int64 { return c.epoch.Add(1) }

// Partitions returns the total partition count.
func (c *Cluster) Partitions() int { return c.cfg.Partitions() }

// NodeOf returns the node hosting a partition.
func (c *Cluster) NodeOf(part int) int { return part / c.cfg.CoresPerNode }

// NewData allocates an empty partitioned dataset.
func (c *Cluster) NewData() Data { return make(Data, c.Partitions()) }

// Scatter distributes records round-robin over all partitions — the
// initial load placement of a dataset. Under a memory budget the
// per-partition input footprint is tracked (observability, not
// enforcement: base data placement is the storage layer's concern).
func (c *Cluster) Scatter(recs []types.Record) Data {
	data := c.NewData()
	p := c.Partitions()
	for i, r := range recs {
		data[i%p] = append(data[i%p], r)
	}
	if c.memBudget > 0 {
		for _, part := range data {
			c.metrics.notePartitionInput(types.RecordsMemSize(part))
		}
	}
	return data
}

// Run executes f once per partition in parallel and returns the
// per-partition outputs. Busy time is accounted per partition. Each
// partition task runs under the cluster's retry policy: injected
// transient faults are retried with capped exponential backoff, and a
// failed query reports every failing partition (via errors.Join), not
// just the first one.
func (c *Cluster) Run(data Data, f func(part int, in []types.Record) ([]types.Record, error)) (Data, error) {
	out, err := runParts(c, data, f)
	if err != nil {
		return nil, err
	}
	return Data(out), nil
}

// RunValues executes f once per partition in parallel for tasks that
// produce an arbitrary value instead of records (e.g. local summaries).
// It shares Run's retry and error-aggregation semantics.
func RunValues[T any](c *Cluster, data Data, f func(part int, in []types.Record) (T, error)) ([]T, error) {
	return runParts(c, data, f)
}

// runParts is the shared parallel task scaffold behind Run and
// RunValues: one goroutine per partition, each driving its task
// through the retry policy, with all failures aggregated. Task spans
// are created in partition order before the goroutines launch, so the
// trace tree's shape is deterministic even though the tasks race.
func runParts[T any](c *Cluster, data Data, f func(part int, in []types.Record) (T, error)) ([]T, error) {
	if len(data) != c.Partitions() {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), c.Partitions())
	}
	ctx := c.context()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	epoch := c.nextEpoch()
	out := make([]T, c.Partitions())
	errs := make([]error, c.Partitions())
	var wg sync.WaitGroup
	for part := 0; part < c.Partitions(); part++ {
		sp := c.span.Task(part)
		wg.Add(1)
		go func(part int, sp *trace.Span) {
			defer wg.Done()
			defer sp.End()
			sp.Add("records.in", int64(len(data[part])))
			out[part], errs[part] = runTask(c, ctx, epoch, part, data[part], sp, f)
			if recs, ok := any(out[part]).([]types.Record); ok {
				sp.Add("records.out", int64(len(recs)))
			}
		}(part, sp)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var fails []error
	for part, err := range errs {
		if err != nil {
			fails = append(fails, &PartitionError{Part: part, Err: err})
		}
	}
	if len(fails) > 0 {
		return nil, errors.Join(fails...)
	}
	return out, nil
}

// runTask drives one partition task to completion under the retry
// policy: transient (injected) failures retry with capped exponential
// backoff, straggling attempts are abandoned and immediately
// re-executed, and deterministic task errors fail fast.
func runTask[T any](c *Cluster, ctx context.Context, epoch int64, part int, in []types.Record, sp *trace.Span, f func(part int, in []types.Record) (T, error)) (T, error) {
	var zero T
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var fails []error
	backoffNext := false
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		if attempt > 0 {
			c.metrics.addRetry()
			sp.Add("retries", 1)
			if backoffNext && !sleepCtx(ctx, c.retry.backoff(attempt)) {
				return zero, ctx.Err()
			}
		}
		start := c.clock.Now()
		res, err := runAttempt(c, ctx, epoch, part, attempt, in, f)
		busy := c.clock.Now().Sub(start)
		c.metrics.addBusy(part, busy)
		sp.Add("busy.ns", int64(busy))
		if err == nil {
			if attempt > 0 {
				c.metrics.addRecovered()
			}
			return res, nil
		}
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
		if errors.Is(err, errStragglerAbandoned) {
			// Speculation abandoned a straggling attempt before it did any
			// user work; re-execute immediately without backoff.
			c.metrics.addSpeculative()
			backoffNext = false
			fails = append(fails, fmt.Errorf("attempt %d: %w", attempt, err))
			continue
		}
		if !IsRetryable(err) {
			return zero, err
		}
		backoffNext = true
		fails = append(fails, err)
	}
	return zero, fmt.Errorf("cluster: gave up after %d attempts: %w", attempts, errors.Join(fails...))
}

// runAttempt executes one task attempt, injecting faults and — when
// speculation is enabled — abandoning an attempt that has not started
// user work after SpeculativeAfter. The straggler delay models node
// slowness *before* the task runs, so an abandoned attempt never
// executed f: the speculative copy is the only execution, and task
// closures never run concurrently with themselves.
func runAttempt[T any](c *Cluster, ctx context.Context, epoch int64, part, attempt int, in []types.Record, f func(part int, in []types.Record) (T, error)) (T, error) {
	var zero T
	fi := c.faults
	if fi == nil {
		return f(part, in)
	}
	node := c.NodeOf(part)
	exec := func(actx context.Context) (T, error) {
		if d := fi.stragglerDelay(node, attempt); d > 0 {
			if !sleepCtx(actx, d) {
				return zero, actx.Err()
			}
		}
		if err := fi.crash(epoch, node, part, attempt); err != nil {
			return zero, err
		}
		if err := actx.Err(); err != nil {
			return zero, err
		}
		return f(part, in)
	}
	spec := c.retry.SpeculativeAfter
	if spec <= 0 {
		return exec(ctx)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		val T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := exec(actx)
		ch <- result{v, err}
	}()
	timer := time.NewTimer(spec)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.val, r.err
	case <-timer.C:
		// The attempt is slow. Cancel it; if it aborts inside the injected
		// delay (never having started user work), report it abandoned so
		// the driver re-executes immediately. If it finished anyway, use
		// the result.
		cancel()
		r := <-ch
		if r.err != nil && ctx.Err() == nil && errors.Is(r.err, context.Canceled) {
			return zero, errStragglerAbandoned
		}
		return r.val, r.err
	}
}

// Exchange repartitions data: route maps each record to a destination
// partition. Records crossing a node boundary are serialized, counted,
// and deserialized; intra-node moves are free, as on a real cluster.
func (c *Cluster) Exchange(data Data, route func(part int, r types.Record) int) (Data, error) {
	p := c.Partitions()
	if len(data) != p {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), p)
	}
	// outbox[src][dst] collects records by destination.
	outbox := make([][][]types.Record, p)
	_, err := c.Run(data, func(part int, in []types.Record) ([]types.Record, error) {
		box := make([][]types.Record, p)
		for _, r := range in {
			dst := route(part, r)
			if dst < 0 || dst >= p {
				return nil, fmt.Errorf("cluster: route produced partition %d of %d", dst, p)
			}
			box[dst] = append(box[dst], r)
		}
		outbox[part] = box
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver(outbox)
}

// ExchangeMulti repartitions data where each record may be sent to
// several destination partitions (multicast). It is the primitive
// behind the balanced theta operator: records travel only to the
// partitions that own a bucket pair needing them, instead of a full
// broadcast. An empty destination list drops the record.
func (c *Cluster) ExchangeMulti(data Data, route func(part int, r types.Record) []int) (Data, error) {
	p := c.Partitions()
	if len(data) != p {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), p)
	}
	outbox := make([][][]types.Record, p)
	_, err := c.Run(data, func(part int, in []types.Record) ([]types.Record, error) {
		box := make([][]types.Record, p)
		for _, r := range in {
			for _, dst := range route(part, r) {
				if dst < 0 || dst >= p {
					return nil, fmt.Errorf("cluster: route produced partition %d of %d", dst, p)
				}
				box[dst] = append(box[dst], r)
			}
		}
		outbox[part] = box
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver(outbox)
}

// Replicate copies every record of data to every partition — the
// broadcast side of a theta (multi-join) bucket matching stage.
func (c *Cluster) Replicate(data Data) (Data, error) {
	p := c.Partitions()
	if len(data) != p {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), p)
	}
	outbox := make([][][]types.Record, p)
	_, err := c.Run(data, func(part int, in []types.Record) ([]types.Record, error) {
		box := make([][]types.Record, p)
		for dst := 0; dst < p; dst++ {
			box[dst] = in
		}
		outbox[part] = box
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver(outbox)
}

// Deliver moves a fully built outbox[src][dst] into the destination
// partitions — the shuffle delivery edge, without the exchange's
// outbox-building side. The benchmark harness times this edge
// directly; exchanges route through it via deliver.
func (c *Cluster) Deliver(outbox [][][]types.Record) (Data, error) {
	return c.deliver(outbox)
}

// deliver moves outbox[src][dst] into the destination partitions,
// serializing cross-node traffic. A corrupted cross-node payload
// (injected, or a genuine decode failure) is resent from the source's
// still-intact outbox up to the retry policy's attempt budget; every
// transfer, including resends, is charged to the shuffle counters.
// Under a memory budget, delivery runs through bounded, backpressured
// inboxes instead (see memory.go); without one this sequential path
// is byte-for-byte the pre-budget behavior. When traced, the whole
// delivery is one "exchange" span carrying the byte/record deltas.
func (c *Cluster) deliver(outbox [][][]types.Record) (Data, error) {
	sp := c.span.Child("exchange")
	var b0, r0 int64
	if sp != nil {
		b0, r0 = c.metrics.BytesShuffled(), c.metrics.RecordsShuffled()
	}
	var out Data
	var err error
	if c.memBudget > 0 {
		out, err = c.deliverBounded(outbox)
	} else {
		out, err = c.deliverSequential(outbox)
	}
	if sp != nil {
		sp.Add("shuffle.bytes", c.metrics.BytesShuffled()-b0)
		sp.Add("shuffle.records", c.metrics.RecordsShuffled()-r0)
		sp.End()
	}
	gets, hits := c.pool.Stats()
	c.metrics.setBatchPool(gets, hits)
	return out, err
}

// transferFrame serializes one columnar frame across a node boundary,
// injecting corruption and resending up to the attempt budget. Every
// attempt, including resends, is charged to the shuffle and batch
// counters. enc and dec are the caller's scratch batches (pooled so
// vector capacity survives across frames).
func (c *Cluster) transferFrame(epoch int64, src, dst int, frame []types.Record, frameIdx int64, maxAttempts int, enc, dec *types.Batch) ([]types.Record, error) {
	fi := c.faults
	var decoded []types.Record
	var err error
	attempt := 0
	for ; attempt < maxAttempts; attempt++ {
		buf := types.EncodeBatch(frame, enc)
		if fi != nil && fi.corrupt(epoch, int64(src), int64(dst), frameIdx*131071+int64(attempt)) {
			buf = corruptPayload(buf)
		}
		c.metrics.addShuffle(int64(len(buf)), int64(len(frame)))
		c.metrics.addBatch(int64(len(frame)))
		if decoded, err = types.DecodeBatch(buf, dec); err == nil {
			break
		}
		c.metrics.addRetry()
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: shuffle %d->%d decode failed after %d attempts: %w", src, dst, attempt, err)
	}
	if attempt > 0 {
		c.metrics.addCorruptHealed()
	}
	return decoded, nil
}

func (c *Cluster) deliverSequential(outbox [][][]types.Record) (Data, error) {
	p := c.Partitions()
	ctx := c.context()
	fi := c.faults
	var epoch int64
	if fi != nil {
		epoch = c.nextEpoch()
	}
	maxAttempts := c.retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	enc, dec := c.pool.Get(0), c.pool.Get(0)
	defer c.pool.Put(enc)
	defer c.pool.Put(dec)
	out := c.NewData()
	for src := 0; src < p; src++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for dst := 0; dst < p; dst++ {
			batch := outbox[src][dst]
			if len(batch) == 0 {
				continue
			}
			if c.NodeOf(src) != c.NodeOf(dst) {
				// One columnar frame per batchSize rows; a corrupted
				// frame is resent alone, so the resend cost stays at
				// frame granularity.
				for lo, frameIdx := 0, int64(0); lo < len(batch); frameIdx++ {
					hi := lo + c.batchSize
					if hi > len(batch) {
						hi = len(batch)
					}
					decoded, err := c.transferFrame(epoch, src, dst, batch[lo:hi], frameIdx, maxAttempts, enc, dec)
					if err != nil {
						return nil, err
					}
					out[dst] = append(out[dst], decoded...)
					lo = hi
				}
				continue
			}
			out[dst] = append(out[dst], batch...)
		}
	}
	return out, nil
}

// ExchangeHash repartitions by a hash of a record-derived key.
func (c *Cluster) ExchangeHash(data Data, key func(r types.Record) uint64) (Data, error) {
	p := uint64(c.Partitions())
	return c.Exchange(data, func(_ int, r types.Record) int {
		return int(key(r) % p)
	})
}

// ExchangeRandom repartitions round-robin (the "random partitioning"
// AsterixDB applies to one side of a theta join, §VII-C). Each source
// partition keeps its own counter, offset by its partition id so the
// sources' streams interleave evenly — no global mutex serializing all
// routing, and the first record of partition 0 lands on partition 0
// instead of skipping it.
func (c *Cluster) ExchangeRandom(data Data) (Data, error) {
	p := c.Partitions()
	if len(data) != p {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), p)
	}
	outbox := make([][][]types.Record, p)
	_, err := c.Run(data, func(part int, in []types.Record) ([]types.Record, error) {
		box := make([][]types.Record, p)
		for i, r := range in {
			dst := (part + i) % p
			box[dst] = append(box[dst], r)
		}
		outbox[part] = box
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver(outbox)
}

// Broadcast accounts for shipping one opaque blob (e.g. an encoded
// partitioning plan) from the coordinator to every node.
func (c *Cluster) Broadcast(blob []byte) {
	c.metrics.addBroadcast(int64(len(blob)) * int64(c.cfg.Nodes))
}

// GatherBytes accounts for shipping per-partition blobs (e.g. encoded
// local summaries) to the coordinator.
func (c *Cluster) GatherBytes(blobs [][]byte) {
	var total int64
	for _, b := range blobs {
		total += int64(len(b))
	}
	c.metrics.addBroadcast(total)
}
