// Package cluster simulates the shared-nothing execution substrate the
// paper runs on (a 12-worker AsterixDB cluster). Data lives in
// partitions; partitions map onto nodes; every record that moves
// between partitions on *different* nodes is serialized through
// internal/wire and counted, so network volume and serde cost are real,
// measurable quantities rather than artifacts of in-process pointer
// passing.
//
// Parallelism model: the unit of parallel work is the partition. A
// cluster with N nodes and C cores per node runs N*C partitions, each
// processed by its own goroutine. Wall-clock speedup saturates at the
// host's physical cores, so the cluster also records per-partition busy
// time; MaxBusy approximates the makespan on ideal hardware and is what
// the scalability experiments report alongside wall time.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"fudj/internal/types"
)

// Config sizes the simulated cluster.
type Config struct {
	Nodes        int // number of shared-nothing nodes
	CoresPerNode int // worker partitions per node
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 1 || c.CoresPerNode < 1 {
		return fmt.Errorf("cluster: need >=1 node and >=1 core, got %d/%d", c.Nodes, c.CoresPerNode)
	}
	return nil
}

// Partitions returns the total partition count (total parallelism).
func (c Config) Partitions() int { return c.Nodes * c.CoresPerNode }

// Data is a partitioned record set: one slice per partition.
type Data [][]types.Record

// Rows returns the total record count across partitions.
func (d Data) Rows() int {
	n := 0
	for _, p := range d {
		n += len(p)
	}
	return n
}

// Flatten concatenates all partitions (used at query output).
func (d Data) Flatten() []types.Record {
	out := make([]types.Record, 0, d.Rows())
	for _, p := range d {
		out = append(out, p...)
	}
	return out
}

// Metrics accumulates the cluster's cost counters for one query.
type Metrics struct {
	mu             sync.Mutex
	bytesShuffled  int64
	recsShuffled   int64
	bytesBroadcast int64
	busy           []time.Duration
	tasks          int64
}

func newMetrics(parts int) *Metrics {
	return &Metrics{busy: make([]time.Duration, parts)}
}

// BytesShuffled returns the bytes serialized across node boundaries.
func (m *Metrics) BytesShuffled() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesShuffled
}

// RecordsShuffled returns the records moved across node boundaries.
func (m *Metrics) RecordsShuffled() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recsShuffled
}

// BytesBroadcast returns the bytes broadcast to all nodes (plans etc.).
func (m *Metrics) BytesBroadcast() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesBroadcast
}

// MaxBusy returns the largest accumulated per-partition busy time: the
// query's makespan on hardware with one real core per partition.
func (m *Metrics) MaxBusy() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max time.Duration
	for _, b := range m.busy {
		if b > max {
			max = b
		}
	}
	return max
}

// TotalBusy returns the summed busy time over all partitions.
func (m *Metrics) TotalBusy() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum time.Duration
	for _, b := range m.busy {
		sum += b
	}
	return sum
}

// Tasks returns the number of partition tasks executed.
func (m *Metrics) Tasks() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tasks
}

func (m *Metrics) addBusy(part int, d time.Duration) {
	m.mu.Lock()
	m.busy[part] += d
	m.tasks++
	m.mu.Unlock()
}

func (m *Metrics) addShuffle(bytes, recs int64) {
	m.mu.Lock()
	m.bytesShuffled += bytes
	m.recsShuffled += recs
	m.mu.Unlock()
}

func (m *Metrics) addBroadcast(bytes int64) {
	m.mu.Lock()
	m.bytesBroadcast += bytes
	m.mu.Unlock()
}

// Cluster is one simulated deployment. It is safe for a single query
// at a time; the engine creates one per query execution so metrics are
// per-query.
type Cluster struct {
	cfg     Config
	metrics *Metrics
}

// New builds a cluster, panicking on invalid configuration (a harness
// bug, not a runtime condition).
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cluster{cfg: cfg, metrics: newMetrics(cfg.Partitions())}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Metrics returns the cluster's cost counters.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Partitions returns the total partition count.
func (c *Cluster) Partitions() int { return c.cfg.Partitions() }

// NodeOf returns the node hosting a partition.
func (c *Cluster) NodeOf(part int) int { return part / c.cfg.CoresPerNode }

// NewData allocates an empty partitioned dataset.
func (c *Cluster) NewData() Data { return make(Data, c.Partitions()) }

// Scatter distributes records round-robin over all partitions — the
// initial load placement of a dataset.
func (c *Cluster) Scatter(recs []types.Record) Data {
	data := c.NewData()
	p := c.Partitions()
	for i, r := range recs {
		data[i%p] = append(data[i%p], r)
	}
	return data
}

// Run executes f once per partition in parallel and returns the
// per-partition outputs. Busy time is accounted per partition.
func (c *Cluster) Run(data Data, f func(part int, in []types.Record) ([]types.Record, error)) (Data, error) {
	if len(data) != c.Partitions() {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), c.Partitions())
	}
	out := c.NewData()
	errs := make([]error, c.Partitions())
	var wg sync.WaitGroup
	for part := 0; part < c.Partitions(); part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			start := time.Now()
			res, err := f(part, data[part])
			c.metrics.addBusy(part, time.Since(start))
			out[part] = res
			errs[part] = err
		}(part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunValues executes f once per partition in parallel for tasks that
// produce an arbitrary value instead of records (e.g. local summaries).
func RunValues[T any](c *Cluster, data Data, f func(part int, in []types.Record) (T, error)) ([]T, error) {
	if len(data) != c.Partitions() {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), c.Partitions())
	}
	out := make([]T, c.Partitions())
	errs := make([]error, c.Partitions())
	var wg sync.WaitGroup
	for part := 0; part < c.Partitions(); part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			start := time.Now()
			res, err := f(part, data[part])
			c.metrics.addBusy(part, time.Since(start))
			out[part] = res
			errs[part] = err
		}(part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Exchange repartitions data: route maps each record to a destination
// partition. Records crossing a node boundary are serialized, counted,
// and deserialized; intra-node moves are free, as on a real cluster.
func (c *Cluster) Exchange(data Data, route func(part int, r types.Record) int) (Data, error) {
	p := c.Partitions()
	if len(data) != p {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), p)
	}
	// outbox[src][dst] collects records by destination.
	outbox := make([][][]types.Record, p)
	_, err := c.Run(data, func(part int, in []types.Record) ([]types.Record, error) {
		box := make([][]types.Record, p)
		for _, r := range in {
			dst := route(part, r)
			if dst < 0 || dst >= p {
				return nil, fmt.Errorf("cluster: route produced partition %d of %d", dst, p)
			}
			box[dst] = append(box[dst], r)
		}
		outbox[part] = box
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver(outbox)
}

// ExchangeMulti repartitions data where each record may be sent to
// several destination partitions (multicast). It is the primitive
// behind the balanced theta operator: records travel only to the
// partitions that own a bucket pair needing them, instead of a full
// broadcast. An empty destination list drops the record.
func (c *Cluster) ExchangeMulti(data Data, route func(part int, r types.Record) []int) (Data, error) {
	p := c.Partitions()
	if len(data) != p {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), p)
	}
	outbox := make([][][]types.Record, p)
	_, err := c.Run(data, func(part int, in []types.Record) ([]types.Record, error) {
		box := make([][]types.Record, p)
		for _, r := range in {
			for _, dst := range route(part, r) {
				if dst < 0 || dst >= p {
					return nil, fmt.Errorf("cluster: route produced partition %d of %d", dst, p)
				}
				box[dst] = append(box[dst], r)
			}
		}
		outbox[part] = box
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver(outbox)
}

// Replicate copies every record of data to every partition — the
// broadcast side of a theta (multi-join) bucket matching stage.
func (c *Cluster) Replicate(data Data) (Data, error) {
	p := c.Partitions()
	if len(data) != p {
		return nil, fmt.Errorf("cluster: data has %d partitions, cluster has %d", len(data), p)
	}
	outbox := make([][][]types.Record, p)
	_, err := c.Run(data, func(part int, in []types.Record) ([]types.Record, error) {
		box := make([][]types.Record, p)
		for dst := 0; dst < p; dst++ {
			box[dst] = in
		}
		outbox[part] = box
		return nil, nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver(outbox)
}

// deliver moves outbox[src][dst] into the destination partitions,
// serializing cross-node traffic.
func (c *Cluster) deliver(outbox [][][]types.Record) (Data, error) {
	p := c.Partitions()
	out := c.NewData()
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			batch := outbox[src][dst]
			if len(batch) == 0 {
				continue
			}
			if c.NodeOf(src) != c.NodeOf(dst) {
				buf := types.EncodeRecords(batch)
				c.metrics.addShuffle(int64(len(buf)), int64(len(batch)))
				decoded, err := types.DecodeRecords(buf)
				if err != nil {
					return nil, fmt.Errorf("cluster: shuffle decode: %w", err)
				}
				batch = decoded
			}
			out[dst] = append(out[dst], batch...)
		}
	}
	return out, nil
}

// ExchangeHash repartitions by a hash of a record-derived key.
func (c *Cluster) ExchangeHash(data Data, key func(r types.Record) uint64) (Data, error) {
	p := uint64(c.Partitions())
	return c.Exchange(data, func(_ int, r types.Record) int {
		return int(key(r) % p)
	})
}

// ExchangeRandom repartitions round-robin (the "random partitioning"
// AsterixDB applies to one side of a theta join, §VII-C).
func (c *Cluster) ExchangeRandom(data Data) (Data, error) {
	p := c.Partitions()
	var mu sync.Mutex
	next := 0
	return c.Exchange(data, func(_ int, _ types.Record) int {
		mu.Lock()
		defer mu.Unlock()
		next = (next + 1) % p
		return next
	})
}

// Broadcast accounts for shipping one opaque blob (e.g. an encoded
// partitioning plan) from the coordinator to every node.
func (c *Cluster) Broadcast(blob []byte) {
	c.metrics.addBroadcast(int64(len(blob)) * int64(c.cfg.Nodes))
}

// GatherBytes accounts for shipping per-partition blobs (e.g. encoded
// local summaries) to the coordinator.
func (c *Cluster) GatherBytes(blobs [][]byte) {
	var total int64
	for _, b := range blobs {
		total += int64(len(b))
	}
	c.metrics.addBroadcast(total)
}
