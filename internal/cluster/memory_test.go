package cluster

import (
	"strings"
	"sync"
	"testing"

	"fudj/internal/types"
)

func payloadRecords(n, strLen int) []types.Record {
	recs := make([]types.Record, n)
	for i := range recs {
		recs[i] = types.Record{
			types.NewInt64(int64(i)),
			types.NewString(strings.Repeat("p", strLen)),
		}
	}
	return recs
}

// exchangeBoth runs the same Exchange on a bounded and an unbounded
// cluster and returns both results.
func exchangeBoth(t *testing.T, budget int64, recs []types.Record) (bounded, unbounded Data, bc *Cluster) {
	t.Helper()
	// Scatter is round-robin, so shift by one to force every record to
	// move — half the traffic crosses a node boundary.
	route := func(_ int, r types.Record) int { return int(r[0].Int64()+1) % 4 }

	free := New(Config{Nodes: 2, CoresPerNode: 2})
	unbounded, err := free.Exchange(free.Scatter(recs), route)
	if err != nil {
		t.Fatal(err)
	}

	bc = New(Config{Nodes: 2, CoresPerNode: 2})
	bc.SetMemoryBudget(budget)
	bounded, err = bc.Exchange(bc.Scatter(recs), route)
	if err != nil {
		t.Fatal(err)
	}
	return bounded, unbounded, bc
}

func TestBoundedExchangeMatchesSequential(t *testing.T) {
	// The credit-bounded delivery path must produce byte-identical
	// partitions in the same record order as the unbounded path —
	// backpressure changes timing, never results.
	recs := payloadRecords(400, 64)
	bounded, unbounded, bc := exchangeBoth(t, 8192, recs)
	if len(bounded) != len(unbounded) {
		t.Fatalf("partition count %d != %d", len(bounded), len(unbounded))
	}
	for p := range bounded {
		if len(bounded[p]) != len(unbounded[p]) {
			t.Fatalf("partition %d: %d records, want %d", p, len(bounded[p]), len(unbounded[p]))
		}
		for i := range bounded[p] {
			for j := range bounded[p][i] {
				if !bounded[p][i][j].Equal(unbounded[p][i][j]) {
					t.Fatalf("partition %d record %d differs", p, i)
				}
			}
		}
	}
	if got := bc.Metrics().Backpressure(); got == 0 {
		t.Error("tiny budget produced no backpressure events")
	}
}

func TestBoundedExchangePeakWithinBudget(t *testing.T) {
	const budget = 8192
	recs := payloadRecords(600, 100) // working set far above the budget
	_, _, bc := exchangeBoth(t, budget, recs)
	m := bc.Metrics()
	if m.PeakMemory() <= 0 {
		t.Fatal("no tracked memory")
	}
	if m.PeakMemory() > budget {
		t.Errorf("PeakMemory = %d exceeds budget %d", m.PeakMemory(), budget)
	}
	if m.PeakInput() <= 0 {
		t.Error("PeakInput not tracked")
	}
}

func TestBoundedExchangeLargeBudgetNoStall(t *testing.T) {
	// A budget comfortably above the working set must still complete
	// and report zero spill (bounded delivery alone never spills).
	recs := payloadRecords(100, 16)
	_, _, bc := exchangeBoth(t, 64<<20, recs)
	if bc.Metrics().BytesSpilled() != 0 {
		t.Error("delivery alone should not spill")
	}
}

func TestBoundedExchangeHealsCorruption(t *testing.T) {
	// Chunked cross-node sends must keep the detect-and-resend loop:
	// corrupted payloads are healed, results stay correct.
	recs := payloadRecords(300, 64)
	route := func(_ int, r types.Record) int { return int(r[0].Int64()+1) % 4 }

	c := New(Config{Nodes: 2, CoresPerNode: 2})
	c.SetMemoryBudget(8192)
	c.SetFaults(NewFaultInjector(FaultConfig{Seed: 11, CorruptProb: 0.3}))
	out, err := c.Exchange(c.Scatter(recs), route)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 300 {
		t.Fatalf("Rows = %d, want 300", out.Rows())
	}
	if c.Metrics().CorruptionsHealed() == 0 {
		t.Error("no corruption was injected/healed; seed too weak for the test")
	}
}

func TestFlattenPreallocates(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	data := c.Scatter(intRecords(10))
	flat := data.Flatten()
	if len(flat) != 10 || cap(flat) != 10 {
		t.Errorf("len/cap = %d/%d, want 10/10", len(flat), cap(flat))
	}
	if got := recordInts(flat); got[0] != 0 || got[9] != 9 {
		t.Errorf("Flatten lost records: %v", got)
	}
	var empty Data
	if empty.Flatten() != nil {
		t.Error("empty Flatten should be nil")
	}
}

func TestMetricsSnapshotConsistent(t *testing.T) {
	// Snapshot must read all counters under one lock pass: with writers
	// incrementing shuffle bytes and records together, every snapshot
	// must observe bytes >= records (each add writes bytes first via the
	// same lock), never a torn mix.
	m := &Metrics{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.addShuffle(2, 1)
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		s := m.Snapshot()
		if s.BytesShuffled != 2*s.RecordsShuffled {
			t.Fatalf("torn snapshot: bytes=%d records=%d", s.BytesShuffled, s.RecordsShuffled)
		}
	}
	close(stop)
	wg.Wait()
}

func TestMemoryGaugeRoundTrip(t *testing.T) {
	m := &Metrics{}
	m.ReserveMemory(100)
	m.ReserveMemory(50)
	m.ReleaseMemory(120)
	if got := m.PeakMemory(); got != 150 {
		t.Errorf("PeakMemory = %d, want 150", got)
	}
	m.AddSpill(4096, 2)
	m.AddBucketSplit()
	s := m.Snapshot()
	if s.BytesSpilled != 4096 || s.SpillRuns != 2 || s.BucketsSplit != 1 {
		t.Errorf("spill counters = %+v", s)
	}
}

func TestPartitionBudget(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	if c.PartitionBudget() != 0 {
		t.Error("unbounded cluster should report 0 partition budget")
	}
	c.SetMemoryBudget(4000)
	if got := c.PartitionBudget(); got != 1000 {
		t.Errorf("PartitionBudget = %d, want 1000", got)
	}
	c.SetMemoryBudget(2) // below one byte per partition: clamps to 1
	if got := c.PartitionBudget(); got != 1 {
		t.Errorf("PartitionBudget = %d, want 1", got)
	}
}
