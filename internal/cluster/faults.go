// Fault injection and recovery for the simulated cluster. The paper's
// engine runs on a real 12-node deployment where task crashes, slow
// ("straggler") nodes, and corrupt shuffle payloads are facts of life;
// this file gives the simulator the same adversarial conditions — fully
// deterministic and seedable, so a chaos run is reproducible bit for
// bit — plus the recovery machinery (retry with capped exponential
// backoff, speculative re-execution, shuffle resend) that lets queries
// survive them.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// FaultConfig describes the adverse conditions to inject. The zero
// value injects nothing. All decisions derive from Seed and the fault
// site (epoch, partition, attempt), never from wall clock or a shared
// RNG, so a given configuration misbehaves identically on every run.
type FaultConfig struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// CrashProb is the per-task-attempt probability of a simulated
	// crash (the task dies before publishing results and is retried).
	CrashProb float64
	// FailedNodes lists nodes whose tasks always crash on their first
	// attempt — a node failure recovered by rescheduling, since the
	// retry models re-execution after failover.
	FailedNodes []int
	// StragglerNodes lists nodes whose tasks are delayed by
	// StragglerDelay on their first attempt (a slow disk, a busy
	// neighbour). Speculative re-execution sidesteps the delay.
	StragglerNodes []int
	// StragglerDelay is the injected delay on straggler nodes
	// (default 25ms when StragglerNodes is non-empty).
	StragglerDelay time.Duration
	// CorruptProb is the per-cross-node-batch probability that a
	// shuffle payload arrives corrupted and must be resent.
	CorruptProb float64
}

// FaultInjector makes deterministic fault decisions for one query
// execution and counts what it injected. Create a fresh injector per
// query so two queries with the same seed see the same faults.
type FaultInjector struct {
	cfg       FaultConfig
	nodeDown  map[int]bool
	straggler map[int]bool

	crashes     atomic.Int64
	delays      atomic.Int64
	corruptions atomic.Int64
}

// NewFaultInjector builds an injector, applying defaults (25ms
// straggler delay when stragglers are configured without one).
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.StragglerDelay <= 0 {
		cfg.StragglerDelay = 25 * time.Millisecond
	}
	fi := &FaultInjector{
		cfg:       cfg,
		nodeDown:  make(map[int]bool, len(cfg.FailedNodes)),
		straggler: make(map[int]bool, len(cfg.StragglerNodes)),
	}
	for _, n := range cfg.FailedNodes {
		fi.nodeDown[n] = true
	}
	for _, n := range cfg.StragglerNodes {
		fi.straggler[n] = true
	}
	return fi
}

// Config returns the injector's configuration.
func (fi *FaultInjector) Config() FaultConfig { return fi.cfg }

// Crashes returns how many task crashes were injected.
func (fi *FaultInjector) Crashes() int64 { return fi.crashes.Load() }

// Delays returns how many straggler delays were injected.
func (fi *FaultInjector) Delays() int64 { return fi.delays.Load() }

// Corruptions returns how many shuffle payloads were corrupted.
func (fi *FaultInjector) Corruptions() int64 { return fi.corruptions.Load() }

// Decision channels, kept distinct so a crash roll never correlates
// with a corruption roll at the same coordinates.
const (
	rollCrash = iota + 1
	rollCorrupt
)

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// mixing function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a uniform float in [0, 1) derived purely from the seed,
// the decision channel, and the fault site coordinates.
func (fi *FaultInjector) roll(kind int, coords ...int64) float64 {
	h := mix64(uint64(fi.cfg.Seed) ^ uint64(kind)*0x9e3779b97f4a7c15)
	for _, v := range coords {
		h = mix64(h ^ (uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)))
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

// stragglerDelay returns the injected delay for one task attempt.
// Only first attempts on straggler nodes are delayed: a speculative or
// retried copy models re-execution on a healthy node.
func (fi *FaultInjector) stragglerDelay(node, attempt int) time.Duration {
	if attempt == 0 && fi.straggler[node] {
		fi.delays.Add(1)
		return fi.cfg.StragglerDelay
	}
	return 0
}

// crash decides whether one task attempt dies, returning a retryable
// *FaultError when it does.
func (fi *FaultInjector) crash(epoch int64, node, part, attempt int) error {
	if attempt == 0 && fi.nodeDown[node] {
		fi.crashes.Add(1)
		return &FaultError{Kind: FaultNodeDown, Node: node, Part: part, Attempt: attempt}
	}
	if fi.cfg.CrashProb > 0 && fi.roll(rollCrash, epoch, int64(part), int64(attempt)) < fi.cfg.CrashProb {
		fi.crashes.Add(1)
		return &FaultError{Kind: FaultCrash, Node: node, Part: part, Attempt: attempt}
	}
	return nil
}

// corrupt decides whether one cross-node shuffle batch arrives
// corrupted on this transfer attempt.
func (fi *FaultInjector) corrupt(epoch, src, dst, attempt int64) bool {
	if fi.cfg.CorruptProb <= 0 {
		return false
	}
	if fi.roll(rollCorrupt, epoch, src, dst, attempt) < fi.cfg.CorruptProb {
		fi.corruptions.Add(1)
		return true
	}
	return false
}

// corruptPayload damages an encoded shuffle buffer the way a botched
// transfer would: the tail is lost. DecodeRecords is guaranteed to
// reject the result because the batch header still claims the full
// record count.
func corruptPayload(buf []byte) []byte {
	return buf[:len(buf)/2]
}

// FaultKind classifies an injected fault.
type FaultKind int

// The injected fault kinds.
const (
	FaultCrash    FaultKind = iota // probabilistic task crash
	FaultNodeDown                  // deterministic per-node failure
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "task crash"
	case FaultNodeDown:
		return "node failure"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultError is a simulated infrastructure failure. It is retryable:
// re-executing the task (on a recovered or different node) may succeed,
// unlike a deterministic error from the task's own logic.
type FaultError struct {
	Kind    FaultKind
	Node    int
	Part    int
	Attempt int
}

// Error implements the error interface.
func (e *FaultError) Error() string {
	return fmt.Sprintf("cluster: injected %v (node %d, partition %d, attempt %d)", e.Kind, e.Node, e.Part, e.Attempt)
}

// Retryable marks the fault as transient.
func (e *FaultError) Retryable() bool { return true }

// IsRetryable reports whether an error is transient, i.e. whether
// re-running the failed task could succeed. Deterministic task errors
// (bad routes, UDF failures) are not; injected infrastructure faults
// are.
func IsRetryable(err error) bool {
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// PartitionError tags a task error with the partition it came from, so
// an aggregated query failure names every failing partition.
type PartitionError struct {
	Part int
	Err  error
}

// Error implements the error interface.
func (e *PartitionError) Error() string { return fmt.Sprintf("partition %d: %v", e.Part, e.Err) }

// Unwrap exposes the underlying task error to errors.Is/As.
func (e *PartitionError) Unwrap() error { return e.Err }

// RetryPolicy governs how partition tasks recover from transient
// failures.
type RetryPolicy struct {
	// MaxAttempts bounds executions per task (1 = no retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
	// SpeculativeAfter, when positive, enables straggler mitigation:
	// a task attempt that has not started user work after this delay is
	// abandoned and immediately re-executed (modelling a speculative
	// copy scheduled on a healthy node). Zero disables speculation.
	SpeculativeAfter time.Duration
}

// DefaultRetryPolicy returns the policy clusters start with: a handful
// of fast retries, no speculation.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
	}
}

// backoff returns the delay before the given retry attempt (attempt
// numbering starts at 1 for the first retry).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// errStragglerAbandoned marks an attempt abandoned by speculation so
// the retry driver re-executes immediately, without backoff.
var errStragglerAbandoned = errors.New("cluster: straggler attempt abandoned")

// sleepCtx sleeps for d unless the context ends first, reporting
// whether the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
