// Fault injection and recovery for the simulated cluster. The paper's
// engine runs on a real 12-node deployment where task crashes, slow
// ("straggler") nodes, and corrupt shuffle payloads are facts of life;
// this file gives the simulator the same adversarial conditions — fully
// deterministic and seedable, so a chaos run is reproducible bit for
// bit — plus the recovery machinery (retry with capped exponential
// backoff, speculative re-execution, shuffle resend) that lets queries
// survive them.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig describes the adverse conditions to inject. The zero
// value injects nothing. All decisions derive from Seed and the fault
// site (epoch, partition, attempt), never from wall clock or a shared
// RNG, so a given configuration misbehaves identically on every run.
type FaultConfig struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// CrashProb is the per-task-attempt probability of a simulated
	// crash (the task dies before publishing results and is retried).
	CrashProb float64
	// FailedNodes lists nodes whose tasks always crash on their first
	// attempt — a node failure recovered by rescheduling, since the
	// retry models re-execution after failover.
	FailedNodes []int
	// StragglerNodes lists nodes whose tasks are delayed by
	// StragglerDelay on their first attempt (a slow disk, a busy
	// neighbour). Speculative re-execution sidesteps the delay.
	StragglerNodes []int
	// StragglerDelay is the injected delay on straggler nodes
	// (default 25ms when StragglerNodes is non-empty).
	StragglerDelay time.Duration
	// CorruptProb is the per-cross-node-batch probability that a
	// shuffle payload arrives corrupted and must be resent.
	CorruptProb float64
	// BarrierKills lists nodes that die the first time execution
	// crosses the named phase barrier — the targeted "kill-at-barrier"
	// fault. Each entry fires once per query.
	BarrierKills []BarrierKill
	// BarrierKillProb is the per-node probability of dying at each
	// barrier crossing (the probabilistic counterpart of BarrierKills).
	BarrierKillProb float64
	// TornWriteProb is the per-checkpoint probability that the write is
	// torn: the published file loses its tail, terminator included, as
	// a crash mid-write would leave it.
	TornWriteProb float64
	// CheckpointCorruptProb is the per-checkpoint probability of silent
	// media damage: one bit of the published file is flipped.
	CheckpointCorruptProb float64
}

// BarrierKill names one targeted node death: Node dies the first time
// execution crosses Barrier.
type BarrierKill struct {
	Barrier Barrier
	Node    int
}

// checkpointDamage classifies the injected damage to one published
// checkpoint file.
type checkpointDamage int

const (
	damageNone checkpointDamage = iota
	damageTorn
	damageCorrupt
)

// FaultInjector makes deterministic fault decisions for one query
// execution and counts what it injected. Create a fresh injector per
// query so two queries with the same seed see the same faults.
type FaultInjector struct {
	cfg       FaultConfig
	nodeDown  map[int]bool
	straggler map[int]bool

	// barrierFired tracks which targeted BarrierKills entries have
	// fired (each fires once per query). Guarded by mu; barrier
	// crossings happen on the coordinator, but the lock keeps the
	// injector race-free under -race regardless of caller discipline.
	mu           sync.Mutex
	barrierFired map[BarrierKill]bool

	crashes      atomic.Int64
	delays       atomic.Int64
	corruptions  atomic.Int64
	barrierKills atomic.Int64
	tornWrites   atomic.Int64
	ckptCorrupts atomic.Int64
}

// NewFaultInjector builds an injector, applying defaults (25ms
// straggler delay when stragglers are configured without one).
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.StragglerDelay <= 0 {
		cfg.StragglerDelay = 25 * time.Millisecond
	}
	fi := &FaultInjector{
		cfg:          cfg,
		nodeDown:     make(map[int]bool, len(cfg.FailedNodes)),
		straggler:    make(map[int]bool, len(cfg.StragglerNodes)),
		barrierFired: make(map[BarrierKill]bool, len(cfg.BarrierKills)),
	}
	for _, n := range cfg.FailedNodes {
		fi.nodeDown[n] = true
	}
	for _, n := range cfg.StragglerNodes {
		fi.straggler[n] = true
	}
	return fi
}

// Config returns the injector's configuration.
func (fi *FaultInjector) Config() FaultConfig { return fi.cfg }

// Crashes returns how many task crashes were injected.
func (fi *FaultInjector) Crashes() int64 { return fi.crashes.Load() }

// Delays returns how many straggler delays were injected.
func (fi *FaultInjector) Delays() int64 { return fi.delays.Load() }

// Corruptions returns how many shuffle payloads were corrupted.
func (fi *FaultInjector) Corruptions() int64 { return fi.corruptions.Load() }

// BarrierKills returns how many node deaths were injected at phase
// barriers.
func (fi *FaultInjector) BarrierKills() int64 { return fi.barrierKills.Load() }

// TornWrites returns how many checkpoint writes were torn.
func (fi *FaultInjector) TornWrites() int64 { return fi.tornWrites.Load() }

// CheckpointCorruptions returns how many published checkpoints had a
// bit flipped.
func (fi *FaultInjector) CheckpointCorruptions() int64 { return fi.ckptCorrupts.Load() }

// Decision channels, kept distinct so a crash roll never correlates
// with a corruption roll at the same coordinates.
const (
	rollCrash = iota + 1
	rollCorrupt
	rollBarrier
	rollTorn
	rollCkptCorrupt
)

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// mixing function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a uniform float in [0, 1) derived purely from the seed,
// the decision channel, and the fault site coordinates.
func (fi *FaultInjector) roll(kind int, coords ...int64) float64 {
	h := mix64(uint64(fi.cfg.Seed) ^ uint64(kind)*0x9e3779b97f4a7c15)
	for _, v := range coords {
		h = mix64(h ^ (uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)))
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

// stragglerDelay returns the injected delay for one task attempt.
// Only first attempts on straggler nodes are delayed: a speculative or
// retried copy models re-execution on a healthy node.
func (fi *FaultInjector) stragglerDelay(node, attempt int) time.Duration {
	if attempt == 0 && fi.straggler[node] {
		fi.delays.Add(1)
		return fi.cfg.StragglerDelay
	}
	return 0
}

// crash decides whether one task attempt dies, returning a retryable
// *FaultError when it does.
func (fi *FaultInjector) crash(epoch int64, node, part, attempt int) error {
	if attempt == 0 && fi.nodeDown[node] {
		fi.crashes.Add(1)
		return &FaultError{Kind: FaultNodeDown, Node: node, Part: part, Attempt: attempt}
	}
	if fi.cfg.CrashProb > 0 && fi.roll(rollCrash, epoch, int64(part), int64(attempt)) < fi.cfg.CrashProb {
		fi.crashes.Add(1)
		return &FaultError{Kind: FaultCrash, Node: node, Part: part, Attempt: attempt}
	}
	return nil
}

// corrupt decides whether one cross-node shuffle batch arrives
// corrupted on this transfer attempt.
func (fi *FaultInjector) corrupt(epoch, src, dst, attempt int64) bool {
	if fi.cfg.CorruptProb <= 0 {
		return false
	}
	if fi.roll(rollCorrupt, epoch, src, dst, attempt) < fi.cfg.CorruptProb {
		fi.corruptions.Add(1)
		return true
	}
	return false
}

// hasBarrierFaults reports whether any kill-at-barrier fault is
// armed, so barrier crossings can skip all bookkeeping otherwise.
func (fi *FaultInjector) hasBarrierFaults() bool {
	return fi != nil && (fi.cfg.BarrierKillProb > 0 || len(fi.cfg.BarrierKills) > 0)
}

// killAtBarrier decides which of the cluster's nodes die as execution
// crosses barrier b in fault epoch epoch. Targeted BarrierKills fire
// once per query; probabilistic kills roll per (epoch, barrier, node).
// The returned node list is sorted and duplicate-free.
func (fi *FaultInjector) killAtBarrier(epoch int64, b Barrier, nodes int) []int {
	if !fi.hasBarrierFaults() {
		return nil
	}
	dead := make(map[int]bool)
	fi.mu.Lock()
	for _, k := range fi.cfg.BarrierKills {
		if k.Barrier == b && k.Node >= 0 && k.Node < nodes && !fi.barrierFired[k] {
			fi.barrierFired[k] = true
			dead[k.Node] = true
		}
	}
	fi.mu.Unlock()
	if fi.cfg.BarrierKillProb > 0 {
		for n := 0; n < nodes; n++ {
			if dead[n] {
				continue
			}
			if fi.roll(rollBarrier, epoch, int64(b), int64(n)) < fi.cfg.BarrierKillProb {
				dead[n] = true
			}
		}
	}
	if len(dead) == 0 {
		return nil
	}
	out := make([]int, 0, len(dead))
	for n := range dead {
		out = append(out, n)
	}
	sort.Ints(out)
	fi.barrierKills.Add(int64(len(out)))
	return out
}

// stringCoord folds a checkpoint key into a deterministic roll
// coordinate, so damage decisions depend on the stable key rather
// than the randomized temp path.
func stringCoord(s string) int64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(mix64(h))
}

// checkpointDamage decides whether the published checkpoint under key
// suffers a torn write or a bit flip. Torn wins when both roll: a
// crash mid-write preempts later media damage.
func (fi *FaultInjector) checkpointDamage(key string) checkpointDamage {
	if fi == nil {
		return damageNone
	}
	coord := stringCoord(key)
	if fi.cfg.TornWriteProb > 0 && fi.roll(rollTorn, coord) < fi.cfg.TornWriteProb {
		fi.tornWrites.Add(1)
		return damageTorn
	}
	if fi.cfg.CheckpointCorruptProb > 0 && fi.roll(rollCkptCorrupt, coord) < fi.cfg.CheckpointCorruptProb {
		fi.ckptCorrupts.Add(1)
		return damageCorrupt
	}
	return damageNone
}

// damageOffset picks the deterministic bit-flip position for a corrupt
// checkpoint of the given size, always past the header region so the
// flip lands in framing or payload bytes.
func (fi *FaultInjector) damageOffset(key string, size, header int64) int64 {
	if size <= header {
		return size - 1
	}
	h := mix64(uint64(fi.cfg.Seed) ^ uint64(stringCoord(key)) ^ uint64(size))
	return header + int64(h%uint64(size-header))
}

// corruptPayload damages an encoded shuffle buffer the way a botched
// transfer would: the tail is lost. DecodeRecords is guaranteed to
// reject the result because the batch header still claims the full
// record count.
func corruptPayload(buf []byte) []byte {
	return buf[:len(buf)/2]
}

// FaultKind classifies an injected fault.
type FaultKind int

// The injected fault kinds.
const (
	FaultCrash             FaultKind = iota // probabilistic task crash
	FaultNodeDown                           // deterministic per-node failure
	FaultBarrierKill                        // node death at a phase barrier
	FaultTornWrite                          // checkpoint write torn by a crash
	FaultCheckpointCorrupt                  // checkpoint bit flip on media
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "task crash"
	case FaultNodeDown:
		return "node failure"
	case FaultBarrierKill:
		return "kill-at-barrier"
	case FaultTornWrite:
		return "torn-write"
	case FaultCheckpointCorrupt:
		return "checkpoint-corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// FaultError is a simulated infrastructure failure. It is retryable:
// re-executing the task (on a recovered or different node) may succeed,
// unlike a deterministic error from the task's own logic.
type FaultError struct {
	Kind    FaultKind
	Node    int
	Part    int
	Attempt int
}

// Error implements the error interface.
func (e *FaultError) Error() string {
	return fmt.Sprintf("cluster: injected %v (node %d, partition %d, attempt %d)", e.Kind, e.Node, e.Part, e.Attempt)
}

// Retryable marks the fault as transient.
func (e *FaultError) Retryable() bool { return true }

// IsRetryable reports whether an error is transient, i.e. whether
// re-running the failed task could succeed. Deterministic task errors
// (bad routes, UDF failures) are not; injected infrastructure faults
// are.
func IsRetryable(err error) bool {
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// PartitionError tags a task error with the partition it came from, so
// an aggregated query failure names every failing partition.
type PartitionError struct {
	Part int
	Err  error
}

// Error implements the error interface.
func (e *PartitionError) Error() string { return fmt.Sprintf("partition %d: %v", e.Part, e.Err) }

// Unwrap exposes the underlying task error to errors.Is/As.
func (e *PartitionError) Unwrap() error { return e.Err }

// RetryPolicy governs how partition tasks recover from transient
// failures.
type RetryPolicy struct {
	// MaxAttempts bounds executions per task (1 = no retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
	// SpeculativeAfter, when positive, enables straggler mitigation:
	// a task attempt that has not started user work after this delay is
	// abandoned and immediately re-executed (modelling a speculative
	// copy scheduled on a healthy node). Zero disables speculation.
	SpeculativeAfter time.Duration
}

// DefaultRetryPolicy returns the policy clusters start with: a handful
// of fast retries, no speculation.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 200 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
	}
}

// backoff returns the delay before the given retry attempt (attempt
// numbering starts at 1 for the first retry).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// errStragglerAbandoned marks an attempt abandoned by speculation so
// the retry driver re-executes immediately, without backoff.
var errStragglerAbandoned = errors.New("cluster: straggler attempt abandoned")

// sleepCtx sleeps for d unless the context ends first, reporting
// whether the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
