package cluster

import (
	"testing"

	"fudj/internal/storage"
	"fudj/internal/types"
)

func testStore(t *testing.T) *storage.CheckpointStore {
	t.Helper()
	t.Setenv("TMPDIR", t.TempDir())
	s, err := storage.NewCheckpointStore()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Sweep() })
	return s
}

func recoveryRecords(n int) []types.Record {
	recs := make([]types.Record, n)
	for i := range recs {
		recs[i] = types.Record{types.NewInt64(int64(i)), types.NewString("payload")}
	}
	return recs
}

func TestKillAtBarrierTargetedFiresOnce(t *testing.T) {
	c := New(Config{Nodes: 3, CoresPerNode: 2})
	c.SetFaults(NewFaultInjector(FaultConfig{
		BarrierKills: []BarrierKill{{Barrier: BarrierShuffle, Node: 1}},
	}))
	rm := c.NewRecoveryManager(nil)

	if lost := rm.CrossBarrier(BarrierPlan); lost != nil {
		t.Errorf("plan barrier lost %v, want none (kill targets shuffle)", lost)
	}
	lost := rm.CrossBarrier(BarrierShuffle)
	want := []int{2, 3} // node 1 × 2 cores
	if len(lost) != len(want) || lost[0] != want[0] || lost[1] != want[1] {
		t.Errorf("shuffle barrier lost %v, want %v", lost, want)
	}
	if again := rm.CrossBarrier(BarrierShuffle); again != nil {
		t.Errorf("second crossing lost %v, want none (fire-once)", again)
	}
	if got := c.Metrics().BarrierKillCount(); got != 1 {
		t.Errorf("BarrierKillCount = %d, want 1", got)
	}
}

func TestKillAtBarrierProbabilisticDeterminism(t *testing.T) {
	run := func() [][]int {
		c := New(Config{Nodes: 4, CoresPerNode: 2})
		c.SetFaults(NewFaultInjector(FaultConfig{Seed: 7, BarrierKillProb: 0.5}))
		rm := c.NewRecoveryManager(nil)
		var out [][]int
		for i := 0; i < 6; i++ {
			out = append(out, rm.CrossBarrier(BarrierShuffle))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("crossing %d: %v vs %v — kills not deterministic", i, a[i], b[i])
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("crossing %d: %v vs %v — kills not deterministic", i, a[i], b[i])
			}
		}
	}
}

func TestRecoverRecordsFromCheckpoint(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	rm := c.NewRecoveryManager(testStore(t))
	recs := recoveryRecords(50)
	if err := rm.CheckpointRecords("s0-left-p1", recs); err != nil {
		t.Fatal(err)
	}
	got, err := rm.RecoverRecords("s0-left-p1", 1, func() ([]types.Record, error) {
		t.Fatal("recompute called despite a healthy checkpoint")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("recovered %d records, want %d", len(got), len(recs))
	}
	m := c.Metrics().Snapshot()
	if m.CheckpointRecovered != 1 {
		t.Errorf("CheckpointRecovered = %d, want 1", m.CheckpointRecovered)
	}
	if m.CheckpointBytes <= 0 {
		t.Errorf("CheckpointBytes = %d, want > 0", m.CheckpointBytes)
	}
	if m.PeakMemory <= 0 {
		t.Errorf("PeakMemory = %d, want > 0 (reload must register)", m.PeakMemory)
	}
}

func TestRecoverRecordsHealsTornWrite(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  FaultConfig
	}{
		{"torn", FaultConfig{Seed: 3, TornWriteProb: 1}},
		{"bitflip", FaultConfig{Seed: 3, CheckpointCorruptProb: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{Nodes: 2, CoresPerNode: 2})
			c.SetFaults(NewFaultInjector(tc.cfg))
			rm := c.NewRecoveryManager(testStore(t))
			recs := recoveryRecords(50)
			if err := rm.CheckpointRecords("s0-left-p0", recs); err != nil {
				t.Fatal(err)
			}
			recomputed := false
			got, err := rm.RecoverRecords("s0-left-p0", 0, func() ([]types.Record, error) {
				recomputed = true
				return recs, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !recomputed {
				t.Error("damaged checkpoint was not healed by recompute")
			}
			if len(got) != len(recs) {
				t.Errorf("recovered %d records, want %d", len(got), len(recs))
			}
			m := c.Metrics().Snapshot()
			if m.CheckpointDiscarded != 1 {
				t.Errorf("CheckpointDiscarded = %d, want 1", m.CheckpointDiscarded)
			}
			if m.CheckpointRecovered != 0 {
				t.Errorf("CheckpointRecovered = %d, want 0", m.CheckpointRecovered)
			}
		})
	}
}

func TestRecoverMissingCheckpointRecomputes(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	rm := c.NewRecoveryManager(testStore(t))
	recs := recoveryRecords(5)
	got, err := rm.RecoverRecords("never-saved", 0, func() ([]types.Record, error) {
		return recs, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Errorf("recovered %d records, want %d from recompute", len(got), len(recs))
	}
	if d := c.Metrics().CheckpointsDiscarded(); d != 0 {
		t.Errorf("CheckpointsDiscarded = %d, want 0 (missing is not corrupt)", d)
	}
}

func TestBarrierLossErrorRetryable(t *testing.T) {
	c := New(Config{Nodes: 3, CoresPerNode: 2})
	rm := c.NewRecoveryManager(nil)
	err := rm.LossError(BarrierShuffle, []int{2, 3})
	if !IsRetryable(err) {
		t.Error("BarrierLossError must be retryable")
	}
	ble, ok := err.(*BarrierLossError)
	if !ok {
		t.Fatalf("LossError returned %T", err)
	}
	if len(ble.Nodes) != 1 || ble.Nodes[0] != 1 {
		t.Errorf("Nodes = %v, want [1]", ble.Nodes)
	}
	if ble.Barrier.Class() != "post-shuffle" {
		t.Errorf("Class = %q, want post-shuffle", ble.Barrier.Class())
	}
	if BarrierPlan.Class() != "pre-shuffle" {
		t.Errorf("plan Class = %q, want pre-shuffle", BarrierPlan.Class())
	}
}

func TestMarkDoneTracking(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	rm := c.NewRecoveryManager(nil)
	rm.MarkDone("summarize", 0)
	rm.MarkDone("summarize", 0) // idempotent
	rm.MarkDone("summarize", 2)
	if got := rm.DoneCount("summarize"); got != 2 {
		t.Errorf("DoneCount = %d, want 2", got)
	}
	if !rm.PhaseDone("summarize", 2) || rm.PhaseDone("summarize", 1) {
		t.Error("PhaseDone tracking wrong")
	}
	if rm.DoneCount("combine") != 0 {
		t.Error("unmarked phase should count 0")
	}
}
