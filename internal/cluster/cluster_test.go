package cluster

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"fudj/internal/types"
)

func intRecords(n int) []types.Record {
	recs := make([]types.Record, n)
	for i := range recs {
		recs[i] = types.Record{types.NewInt64(int64(i))}
	}
	return recs
}

func recordInts(recs []types.Record) []int64 {
	out := make([]int64, len(recs))
	for i, r := range recs {
		out[i] = r[0].Int64()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Nodes: 2, CoresPerNode: 3}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Config{Nodes: 0, CoresPerNode: 1}).Validate(); err == nil {
		t.Error("0 nodes should be invalid")
	}
	if (Config{Nodes: 3, CoresPerNode: 4}).Partitions() != 12 {
		t.Error("Partitions")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(Config{})
}

func TestScatterAndFlatten(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	recs := intRecords(10)
	data := c.Scatter(recs)
	if len(data) != 4 {
		t.Fatalf("partitions = %d", len(data))
	}
	if data.Rows() != 10 {
		t.Errorf("Rows = %d", data.Rows())
	}
	got := recordInts(data.Flatten())
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("Flatten lost records: %v", got)
		}
	}
	// Round-robin balance: no partition differs by more than 1.
	for _, p := range data {
		if len(p) < 2 || len(p) > 3 {
			t.Errorf("unbalanced partition of size %d", len(p))
		}
	}
}

func TestNodeOf(t *testing.T) {
	c := New(Config{Nodes: 3, CoresPerNode: 2})
	wants := []int{0, 0, 1, 1, 2, 2}
	for part, want := range wants {
		if got := c.NodeOf(part); got != want {
			t.Errorf("NodeOf(%d) = %d, want %d", part, got, want)
		}
	}
}

func TestRunTransforms(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	data := c.Scatter(intRecords(8))
	out, err := c.Run(data, func(part int, in []types.Record) ([]types.Record, error) {
		var res []types.Record
		for _, r := range in {
			res = append(res, types.Record{types.NewInt64(r[0].Int64() * 10)})
		}
		return res, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := recordInts(out.Flatten())
	for i, v := range got {
		if v != int64(i*10) {
			t.Fatalf("Run output %v", got)
		}
	}
	if c.Metrics().Tasks() != 4 {
		t.Errorf("Tasks = %d, want 4", c.Metrics().Tasks())
	}
}

func TestRunPropagatesError(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 1})
	boom := errors.New("boom")
	_, err := c.Run(c.Scatter(intRecords(4)), func(part int, in []types.Record) ([]types.Record, error) {
		if part == 1 {
			return nil, boom
		}
		return in, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestRunRejectsWrongPartitionCount(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 1})
	if _, err := c.Run(make(Data, 5), nil); err == nil {
		t.Error("want partition count mismatch error")
	}
	if _, err := c.Exchange(make(Data, 5), nil); err == nil {
		t.Error("Exchange: want partition count mismatch error")
	}
	if _, err := c.Replicate(make(Data, 5)); err == nil {
		t.Error("Replicate: want partition count mismatch error")
	}
}

func TestRunValues(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	data := c.Scatter(intRecords(10))
	sums, err := RunValues(c, data, func(part int, in []types.Record) (int64, error) {
		var s int64
		for _, r := range in {
			s += r[0].Int64()
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range sums {
		total += s
	}
	if total != 45 {
		t.Errorf("sum = %d, want 45", total)
	}
}

func TestExchangeHashGroupsKeys(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	data := c.Scatter(intRecords(100))
	out, err := c.ExchangeHash(data, func(r types.Record) uint64 { return r[0].Hash() })
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 100 {
		t.Fatalf("lost records: %d", out.Rows())
	}
	// Determinism: same key always lands in the same partition.
	whereIs := map[int64]int{}
	for part, recs := range out {
		for _, r := range recs {
			whereIs[r[0].Int64()] = part
		}
	}
	out2, err := c.ExchangeHash(c.Scatter(intRecords(100)), func(r types.Record) uint64 { return r[0].Hash() })
	if err != nil {
		t.Fatal(err)
	}
	for part, recs := range out2 {
		for _, r := range recs {
			if whereIs[r[0].Int64()] != part {
				t.Fatalf("key %d moved between runs", r[0].Int64())
			}
		}
	}
	if c.Metrics().BytesShuffled() == 0 {
		t.Error("cross-node exchange should count bytes")
	}
	if c.Metrics().RecordsShuffled() == 0 {
		t.Error("cross-node exchange should count records")
	}
}

func TestExchangeRouteOutOfRange(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 1})
	_, err := c.Exchange(c.Scatter(intRecords(3)), func(int, types.Record) int { return 99 })
	if err == nil {
		t.Error("out-of-range route should error")
	}
}

func TestExchangeMulti(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	data := c.Scatter(intRecords(12))
	// Even keys go to partitions 0 and 3; odd keys are dropped.
	out, err := c.ExchangeMulti(data, func(_ int, r types.Record) []int {
		if r[0].Int64()%2 == 0 {
			return []int{0, 3}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 6 || len(out[3]) != 6 {
		t.Errorf("multicast sizes = %d, %d, want 6, 6", len(out[0]), len(out[3]))
	}
	if len(out[1]) != 0 || len(out[2]) != 0 {
		t.Error("untargeted partitions received records")
	}
	// Out-of-range destinations error.
	if _, err := c.ExchangeMulti(data, func(int, types.Record) []int { return []int{99} }); err == nil {
		t.Error("out-of-range destination should error")
	}
	if _, err := c.ExchangeMulti(make(Data, 3), nil); err == nil {
		t.Error("wrong partition count should error")
	}
}

func TestReplicate(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	data := c.Scatter(intRecords(5))
	out, err := c.Replicate(data)
	if err != nil {
		t.Fatal(err)
	}
	for part, recs := range out {
		if len(recs) != 5 {
			t.Errorf("partition %d has %d records, want all 5", part, len(recs))
		}
	}
}

func TestExchangeRandomBalances(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	out, err := c.ExchangeRandom(c.Scatter(intRecords(40)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 40 {
		t.Fatalf("lost records: %d", out.Rows())
	}
	for part, recs := range out {
		if len(recs) != 10 {
			t.Errorf("partition %d has %d records, want 10", part, len(recs))
		}
	}
}

func TestIntraNodeMovesAreFree(t *testing.T) {
	// Single node: every exchange is intra-node, so no bytes counted.
	c := New(Config{Nodes: 1, CoresPerNode: 4})
	_, err := c.ExchangeHash(c.Scatter(intRecords(50)), func(r types.Record) uint64 { return r[0].Hash() })
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics().BytesShuffled() != 0 {
		t.Errorf("intra-node shuffle counted %d bytes", c.Metrics().BytesShuffled())
	}
}

func TestBroadcastAccounting(t *testing.T) {
	c := New(Config{Nodes: 3, CoresPerNode: 1})
	c.Broadcast(make([]byte, 100))
	if got := c.Metrics().BytesBroadcast(); got != 300 {
		t.Errorf("BytesBroadcast = %d, want 300", got)
	}
	c.GatherBytes([][]byte{make([]byte, 10), make([]byte, 20)})
	if got := c.Metrics().BytesBroadcast(); got != 330 {
		t.Errorf("after gather = %d, want 330", got)
	}
}

func TestBusyTimeTracking(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 1})
	_, err := c.Run(c.Scatter(intRecords(4)), func(part int, in []types.Record) ([]types.Record, error) {
		// Do a little work so busy time is nonzero.
		s := int64(0)
		for i := 0; i < 100000; i++ {
			s += int64(i)
		}
		_ = s
		return in, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics().MaxBusy() <= 0 {
		t.Error("MaxBusy should be positive")
	}
	if c.Metrics().TotalBusy() < c.Metrics().MaxBusy() {
		t.Error("TotalBusy < MaxBusy")
	}
}

// Property: any exchange preserves the multiset of records.
func TestQuickExchangePreservesRecords(t *testing.T) {
	c := New(Config{Nodes: 3, CoresPerNode: 2})
	f := func(keys []int64) bool {
		recs := make([]types.Record, len(keys))
		for i, k := range keys {
			recs[i] = types.Record{types.NewInt64(k)}
		}
		out, err := c.ExchangeHash(c.Scatter(recs), func(r types.Record) uint64 { return r[0].Hash() })
		if err != nil {
			return false
		}
		got := recordInts(out.Flatten())
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
