package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"fudj/internal/types"
)

// doubler is the transform used by most recovery tests: its output is
// easy to verify after any amount of retrying.
func doubler(_ int, in []types.Record) ([]types.Record, error) {
	out := make([]types.Record, len(in))
	for i, r := range in {
		out[i] = types.Record{types.NewInt64(r[0].Int64() * 2)}
	}
	return out, nil
}

func TestFaultInjectorDeterminism(t *testing.T) {
	cfg := FaultConfig{Seed: 99, CrashProb: 0.3, CorruptProb: 0.3}
	a := NewFaultInjector(cfg)
	b := NewFaultInjector(cfg)
	for epoch := int64(0); epoch < 10; epoch++ {
		for part := 0; part < 8; part++ {
			for attempt := 0; attempt < 4; attempt++ {
				ea := a.crash(epoch, 0, part, attempt)
				eb := b.crash(epoch, 0, part, attempt)
				if (ea == nil) != (eb == nil) {
					t.Fatalf("crash decision diverged at epoch=%d part=%d attempt=%d", epoch, part, attempt)
				}
				if a.corrupt(epoch, int64(part), 0, int64(attempt)) != b.corrupt(epoch, int64(part), 0, int64(attempt)) {
					t.Fatalf("corrupt decision diverged at epoch=%d part=%d attempt=%d", epoch, part, attempt)
				}
			}
		}
	}
	if a.Crashes() != b.Crashes() || a.Corruptions() != b.Corruptions() {
		t.Errorf("counters diverged: %d/%d vs %d/%d", a.Crashes(), a.Corruptions(), b.Crashes(), b.Corruptions())
	}
	if a.Crashes() == 0 || a.Corruptions() == 0 {
		t.Errorf("expected some injections at p=0.3, got crashes=%d corruptions=%d", a.Crashes(), a.Corruptions())
	}
}

func TestRetryRecoversFromCrashes(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	c.SetFaults(NewFaultInjector(FaultConfig{Seed: 7, CrashProb: 0.5}))
	data := c.Scatter(intRecords(20))
	out, err := c.Run(data, doubler)
	if err != nil {
		t.Fatalf("Run with crashes: %v", err)
	}
	got := recordInts(out.Flatten())
	for i, v := range got {
		if v != int64(i*2) {
			t.Fatalf("result corrupted after retries: got[%d] = %d", i, v)
		}
	}
	m := c.Metrics()
	if c.Faults().Crashes() == 0 {
		t.Error("no crashes injected at p=0.5")
	}
	if m.Retries() == 0 || m.Recovered() == 0 {
		t.Errorf("expected retries and recoveries, got retries=%d recovered=%d", m.Retries(), m.Recovered())
	}
}

func TestFailedNodeRecovers(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	c.SetFaults(NewFaultInjector(FaultConfig{Seed: 1, FailedNodes: []int{0}}))
	data := c.Scatter(intRecords(8))
	out, err := c.Run(data, doubler)
	if err != nil {
		t.Fatalf("Run with failed node: %v", err)
	}
	if out.Rows() != 8 {
		t.Errorf("Rows = %d, want 8", out.Rows())
	}
	// Node 0 hosts partitions 0 and 1; both first attempts crash.
	if got := c.Metrics().Retries(); got < 2 {
		t.Errorf("Retries = %d, want >= 2", got)
	}
	if got := c.Metrics().Recovered(); got < 2 {
		t.Errorf("Recovered = %d, want >= 2", got)
	}
}

func TestRetryExhaustionReportsAllPartitions(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	c.SetFaults(NewFaultInjector(FaultConfig{Seed: 3, CrashProb: 1.0}))
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond})
	data := c.Scatter(intRecords(8))
	_, err := c.Run(data, doubler)
	if err == nil {
		t.Fatal("Run should fail when every attempt crashes")
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Errorf("error should unwrap to *FaultError, got %v", err)
	}
	msg := err.Error()
	for part := 0; part < 4; part++ {
		if !strings.Contains(msg, fmt.Sprintf("partition %d:", part)) {
			t.Errorf("aggregated error does not name partition %d:\n%s", part, msg)
		}
	}
	if !strings.Contains(msg, "gave up after 3 attempts") {
		t.Errorf("error should mention attempt exhaustion:\n%s", msg)
	}
}

func TestErrorAggregationJoinsPartitions(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	data := c.Scatter(intRecords(8))
	boom := errors.New("boom")
	_, err := c.Run(data, func(part int, in []types.Record) ([]types.Record, error) {
		if part == 1 || part == 3 {
			return nil, fmt.Errorf("task %d: %w", part, boom)
		}
		return in, nil
	})
	if err == nil {
		t.Fatal("Run should fail")
	}
	if !errors.Is(err, boom) {
		t.Error("errors.Is should see the underlying task error")
	}
	msg := err.Error()
	for _, want := range []string{"partition 1:", "partition 3:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q should contain %q", msg, want)
		}
	}
	if strings.Contains(msg, "partition 0:") || strings.Contains(msg, "partition 2:") {
		t.Errorf("error should not blame healthy partitions: %s", msg)
	}
	// Deterministic task errors must not be retried.
	if got := c.Metrics().Retries(); got != 0 {
		t.Errorf("Retries = %d for non-retryable errors, want 0", got)
	}
}

func TestStragglerSpeculation(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	c.SetFaults(NewFaultInjector(FaultConfig{
		Seed:           5,
		StragglerNodes: []int{0, 1},
		StragglerDelay: 150 * time.Millisecond,
	}))
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond, SpeculativeAfter: 5 * time.Millisecond})
	data := c.Scatter(intRecords(16))
	start := time.Now()
	out, err := c.Run(data, doubler)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Run with stragglers: %v", err)
	}
	if out.Rows() != 16 {
		t.Errorf("Rows = %d, want 16", out.Rows())
	}
	if got := c.Metrics().Speculative(); got != 4 {
		t.Errorf("Speculative = %d, want 4 (every partition straggled)", got)
	}
	if elapsed >= 150*time.Millisecond {
		t.Errorf("speculation did not sidestep the %v delay: elapsed %v", 150*time.Millisecond, elapsed)
	}
}

func TestShuffleCorruptionHealed(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	c.SetFaults(NewFaultInjector(FaultConfig{Seed: 17, CorruptProb: 0.5}))
	data := c.Scatter(intRecords(40))
	p := c.Partitions()
	// Reverse routing: every move crosses the node boundary.
	out, err := c.Exchange(data, func(_ int, r types.Record) int {
		return p - 1 - int(r[0].Int64())%p
	})
	if err != nil {
		t.Fatalf("Exchange with corruption: %v", err)
	}
	got := recordInts(out.Flatten())
	if len(got) != 40 {
		t.Fatalf("lost records: %d of 40", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("record content damaged: got[%d] = %d", i, v)
		}
	}
	if c.Faults().Corruptions() == 0 {
		t.Error("no corruptions injected at p=0.5")
	}
	if c.Metrics().CorruptionsHealed() == 0 {
		t.Error("expected healed corruptions")
	}
}

func TestShuffleCorruptionExhausts(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 1})
	c.SetFaults(NewFaultInjector(FaultConfig{Seed: 2, CorruptProb: 1.0}))
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond})
	data := c.Scatter(intRecords(4))
	_, err := c.Exchange(data, func(part int, _ types.Record) int { return 1 - part })
	if err == nil {
		t.Fatal("Exchange should fail when every transfer corrupts")
	}
	if !strings.Contains(err.Error(), "decode failed after 2 attempts") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestExchangeRandomPerSourceCounters(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	data := c.NewData()
	// All records start on partition 0: destinations must cycle from
	// partition 0 (the old global counter skipped it).
	for i := 0; i < 8; i++ {
		data[0] = append(data[0], types.Record{types.NewInt64(int64(i))})
	}
	out, err := c.ExchangeRandom(data)
	if err != nil {
		t.Fatal(err)
	}
	for dst := 0; dst < 4; dst++ {
		got := recordInts(out[dst])
		want := []int64{int64(dst), int64(dst + 4)}
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("partition %d got %v, want %v", dst, got, want)
		}
	}
}

func TestExchangeRandomDeterministic(t *testing.T) {
	run := func() [][]int64 {
		c := New(Config{Nodes: 2, CoresPerNode: 2})
		out, err := c.ExchangeRandom(c.Scatter(intRecords(23)))
		if err != nil {
			t.Fatal(err)
		}
		parts := make([][]int64, len(out))
		for i, p := range out {
			parts[i] = recordInts(p)
		}
		return parts
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("partition %d sizes differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("partition %d differs between runs", i)
			}
		}
	}
}

func TestRunHonoursCancelledContext(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.SetContext(ctx)
	_, err := c.Run(c.Scatter(intRecords(8)), doubler)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := c.Metrics().Tasks(); got != 0 {
		t.Errorf("tasks ran under a cancelled context: %d", got)
	}
}

func TestRunCancelMidFlight(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.SetContext(ctx)
	started := make(chan struct{}, 4)
	go func() {
		for i := 0; i < 4; i++ {
			<-started // wait until every task is in flight
		}
		cancel()
	}()
	_, err := c.Run(c.Scatter(intRecords(8)), func(_ int, in []types.Record) ([]types.Record, error) {
		started <- struct{}{}
		<-ctx.Done() // a well-behaved task observes the query context
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	c := New(Config{Nodes: 2, CoresPerNode: 2})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c.SetContext(ctx)
	_, err := c.Run(c.Scatter(intRecords(8)), doubler)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestBackoffCapped(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	if d := p.backoff(1); d != time.Millisecond {
		t.Errorf("backoff(1) = %v", d)
	}
	if d := p.backoff(2); d != 2*time.Millisecond {
		t.Errorf("backoff(2) = %v", d)
	}
	if d := p.backoff(8); d != 4*time.Millisecond {
		t.Errorf("backoff(8) = %v, want capped at 4ms", d)
	}
}

func TestIsRetryable(t *testing.T) {
	fe := &FaultError{Kind: FaultCrash, Node: 1, Part: 2, Attempt: 0}
	if !IsRetryable(fe) {
		t.Error("FaultError should be retryable")
	}
	if !IsRetryable(fmt.Errorf("wrapped: %w", fe)) {
		t.Error("wrapped FaultError should be retryable")
	}
	if IsRetryable(errors.New("boom")) {
		t.Error("plain errors are not retryable")
	}
	if !strings.Contains(fe.Error(), "task crash") {
		t.Errorf("FaultError message: %s", fe.Error())
	}
}
