package core

import (
	"fmt"
	"sort"
	"sync"
)

// Constructor builds a fresh Join instance. The engine instantiates one
// per query so libraries may keep per-query state without locking.
type Constructor func() Join

// Library is an installable bundle of join algorithms — the analogue of
// the JAR package uploaded to AsterixDB in §VI-A. Classes are looked up
// by name in CREATE JOIN's "AS <class> AT <library>" clause.
type Library struct {
	name string

	mu      sync.RWMutex
	classes map[string]Constructor
}

// NewLibrary creates an empty library with the given name.
func NewLibrary(name string) *Library {
	if name == "" {
		panic("core: library needs a name")
	}
	return &Library{name: name, classes: make(map[string]Constructor)}
}

// Name returns the library name.
func (l *Library) Name() string { return l.name }

// Register adds a join class under the given class name. Registering
// the same class twice is a packaging bug and returns an error.
func (l *Library) Register(class string, c Constructor) error {
	if class == "" || c == nil {
		return fmt.Errorf("core: library %q: empty class name or nil constructor", l.name)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.classes[class]; dup {
		return fmt.Errorf("core: library %q already has class %q", l.name, class)
	}
	l.classes[class] = c
	return nil
}

// MustRegister is Register that panics on error, for package-level
// library construction.
func (l *Library) MustRegister(class string, c Constructor) {
	if err := l.Register(class, c); err != nil {
		panic(err)
	}
}

// Resolve returns the constructor for a class name.
func (l *Library) Resolve(class string) (Constructor, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	c, ok := l.classes[class]
	if !ok {
		return nil, fmt.Errorf("core: library %q has no class %q (have %v)", l.name, class, l.classNamesLocked())
	}
	return c, nil
}

// Classes returns the sorted class names in the library.
func (l *Library) Classes() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.classNamesLocked()
}

func (l *Library) classNamesLocked() []string {
	names := make([]string, 0, len(l.classes))
	for n := range l.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
