package core

import (
	"fmt"
	"runtime/debug"
	"sort"

	"fudj/internal/trace"
)

// Stats reports what the standalone executor did, mirroring the
// counters the distributed engine keeps. Tests and benchmarks use it
// to assert pruning behaviour (e.g. candidate pairs versus results).
type Stats struct {
	LeftRecords   int // input cardinality, left side
	RightRecords  int // input cardinality, right side
	LeftBuckets   int // distinct buckets on the left
	RightBuckets  int // distinct buckets on the right
	BucketPairs   int // bucket pairs passed by MATCH
	Candidates    int // record pairs handed to VERIFY
	Verified      int // pairs passing VERIFY
	Deduped       int // pairs suppressed by duplicate handling
	Results       int // pairs emitted
	SummaryReused bool
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("left=%d right=%d buckets=%d/%d pairs=%d cand=%d verified=%d deduped=%d results=%d",
		s.LeftRecords, s.RightRecords, s.LeftBuckets, s.RightBuckets,
		s.BucketPairs, s.Candidates, s.Verified, s.Deduped, s.Results)
}

// RunStandalone executes a FUDJ algorithm on one machine, exactly as
// the paper's standalone prototype (§VI-D2): read the data, run
// SUMMARIZE / DIVIDE / ASSIGN / MATCH / VERIFY / DEDUP in order, and
// emit every joined key pair. It is the reference semantics that the
// distributed engine must agree with, and the debugging harness for
// new join libraries.
//
// When left and right are the same slice (a self-join) and the join is
// SymmetricSummarize, the summary is computed once and reused, matching
// the self-join optimization of §VI-C.
func RunStandalone(j Join, left, right []any, params []any, emit func(l, r any)) (Stats, error) {
	return RunStandaloneTraced(j, left, right, params, emit, nil)
}

// RunStandaloneTraced is RunStandalone with span emission: each phase
// (SUMMARIZE, PARTITION, COMBINE) becomes a child of parent, carrying
// the same counters the distributed engine's spans carry. A nil parent
// disables tracing at the cost of a few nil checks, so the standalone
// runner and the cluster engine share one observability vocabulary.
func RunStandaloneTraced(j Join, left, right []any, params []any, emit func(l, r any), parent *trace.Span) (stats Stats, err error) {
	stats.LeftRecords = len(left)
	stats.RightRecords = len(right)

	// Panic isolation: a panic anywhere in the user's join functions is
	// converted into a structured *UDFError naming the phase and record
	// being processed, exactly as the distributed executor does.
	phase := "summarize"
	record := -1
	desc := j.Descriptor()
	defer func() {
		if p := recover(); p != nil {
			err = &UDFError{
				Join:      desc.Name,
				Phase:     phase,
				Partition: -1,
				Record:    record,
				Panic:     p,
				Stack:     string(debug.Stack()),
			}
		}
	}()

	// SUMMARIZE: local aggregation (one "node"), then a trivial global
	// merge with the identity summary so both aggregate paths execute.
	sumSpan := parent.Child("SUMMARIZE")
	sumSpan.Add("rows.in", int64(len(left)+len(right)))
	summarize := func(side Side, data []any) Summary {
		s := j.NewSummary(side)
		for i, k := range data {
			record = i
			s = j.LocalAggregate(side, k, s)
		}
		record = -1
		return j.GlobalAggregate(side, s, j.NewSummary(side))
	}
	ls := summarize(Left, left)
	var rs Summary
	if sameSlice(left, right) && desc.SymmetricSummarize {
		rs = ls
		stats.SummaryReused = true
	} else {
		rs = summarize(Right, right)
	}

	// DIVIDE.
	phase = "divide"
	plan, err := j.Divide(ls, rs, params)
	sumSpan.End()
	if err != nil {
		return stats, fmt.Errorf("divide: %w", err)
	}
	// Barrier marker: the point at which the distributed engine makes
	// the broadcast plan durable. Standalone execution has nothing to
	// checkpoint, but emitting the marker keeps the span vocabulary
	// identical across both executors.
	parent.Child("barrier plan").End()

	// PARTITION: bucket both sides.
	phase = "assign"
	partSpan := parent.Child("PARTITION")
	type entry struct {
		key any
		idx int
	}
	bucketize := func(side Side, data []any) map[BucketID][]entry {
		buckets := make(map[BucketID][]entry)
		var ids []BucketID
		for i, k := range data {
			record = i
			ids = j.Assign(side, k, plan, ids[:0])
			for _, id := range ids {
				buckets[id] = append(buckets[id], entry{key: k, idx: i})
			}
		}
		record = -1
		return buckets
	}
	lb := bucketize(Left, left)
	rb := bucketize(Right, right)
	stats.LeftBuckets = len(lb)
	stats.RightBuckets = len(rb)
	partSpan.Add("buckets.left", int64(len(lb)))
	partSpan.Add("buckets.right", int64(len(rb)))
	partSpan.End()
	// Barrier marker: post-shuffle durability point (see above).
	parent.Child("barrier shuffle").End()

	// COMBINE: match buckets, verify pairs, handle duplicates.
	phase = "combine"
	combSpan := parent.Child("COMBINE")
	elim := desc.Dedup == DedupElimination
	var seen map[[2]int]struct{}
	if elim {
		seen = make(map[[2]int]struct{})
	}
	applyDedup := desc.Dedup == DedupAvoidance || desc.Dedup == DedupCustom

	// accept applies duplicate handling to one verified pair and emits.
	accept := func(b1 BucketID, le entry, b2 BucketID, re entry) {
		if applyDedup && !j.Dedup(b1, le.key, b2, re.key, plan) {
			stats.Deduped++
			return
		}
		if elim {
			pair := [2]int{le.idx, re.idx}
			if _, dup := seen[pair]; dup {
				stats.Deduped++
				return
			}
			seen[pair] = struct{}{}
		}
		stats.Results++
		emit(le.key, re.key)
	}

	useLocalJoin := desc.LocalJoin
	joinBuckets := func(b1 BucketID, les []entry, b2 BucketID, res []entry) {
		stats.BucketPairs++
		if useLocalJoin {
			// Custom local bucket joining (§VII-F): the library emits the
			// verified position pairs itself.
			lk := make([]any, len(les))
			for i, e := range les {
				lk[i] = e.key
			}
			rk := make([]any, len(res))
			for i, e := range res {
				rk[i] = e.key
			}
			stats.Candidates += len(les) * len(res)
			j.LocalJoin(b1, lk, b2, rk, plan, func(i, k int) {
				stats.Verified++
				accept(b1, les[i], b2, res[k])
			})
			return
		}
		for _, le := range les {
			record = le.idx
			for _, re := range res {
				stats.Candidates++
				if !j.Verify(b1, le.key, b2, re.key, plan) {
					continue
				}
				stats.Verified++
				accept(b1, le, b2, re)
			}
		}
	}

	if desc.DefaultMatch {
		// Single-join: only identical bucket ids match (hash-join path).
		for _, b := range sortedBuckets(lb) {
			if res, ok := rb[b]; ok {
				joinBuckets(b, lb[b], b, res)
			}
		}
	} else {
		// Multi-join: test every bucket pair through MATCH (theta path).
		lids := sortedBuckets(lb)
		rids := sortedBuckets(rb)
		for _, b1 := range lids {
			for _, b2 := range rids {
				if j.Match(b1, b2) {
					joinBuckets(b1, lb[b1], b2, rb[b2])
				}
			}
		}
	}
	combSpan.Add("candidates", int64(stats.Candidates))
	combSpan.Add("verified", int64(stats.Verified))
	combSpan.Add("rows.out", int64(stats.Results))
	combSpan.End()
	return stats, nil
}

func sortedBuckets[V any](m map[BucketID]V) []BucketID {
	ids := make([]BucketID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func sameSlice(a, b []any) bool {
	return len(a) > 0 && len(a) == len(b) && &a[0] == &b[0]
}
