package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"fudj/internal/wire"
)

// Spec is the typed, developer-facing definition of a FUDJ algorithm.
// It is the Go analogue of the paper's Java FUDJ interfaces: the author
// fills in plain functions over concrete key (KL, KR), summary (S), and
// plan (P) types; Wrap then builds the proxy translation layer (Fig. 7)
// that presents the algorithm to the engine as an untyped Join.
//
// Optional fields and their defaults:
//   - LocalAggRight/AssignRight: nil means the right side reuses the
//     left-side function (requires KL == KR at runtime) and marks the
//     join SymmetricSummarize for the optimizer's self-join reuse.
//   - Match: nil means the framework's default equality match, which
//     lets the optimizer compel a hash join (single-join).
//   - DedupFn: consulted only when Dedup == DedupCustom.
type Spec[KL, KR, S, P any] struct {
	Name   string
	Params int
	Dedup  DedupMode

	NewSummary    func() S
	LocalAggLeft  func(key KL, s S) S
	LocalAggRight func(key KR, s S) S
	GlobalAgg     func(a, b S) S
	Divide        func(left, right S, params []any) (P, error)
	AssignLeft    func(key KL, plan P, dst []BucketID) []BucketID
	AssignRight   func(key KR, plan P, dst []BucketID) []BucketID
	Match         func(b1, b2 BucketID) bool
	Verify        func(b1 BucketID, left KL, b2 BucketID, right KR, plan P) bool
	DedupFn       func(b1 BucketID, left KL, b2 BucketID, right KR, plan P) bool

	// LocalJoin, when non-nil, replaces the engine's nested
	// verify loop inside one matched bucket pair with a custom local
	// algorithm (e.g. plane-sweep for spatial data, merge join for
	// sorted keys) — the local join optimization the paper proposes as
	// future work in §VII-F/§VIII. The implementation receives every
	// record key of both buckets and must call emit(i, j) for each
	// VERIFIED joining pair of positions; the framework still applies
	// duplicate handling to emitted pairs. Correctness contract: the
	// emitted pair set must equal what Verify would accept.
	LocalJoin func(b1 BucketID, left []KL, b2 BucketID, right []KR, plan P, emit func(i, j int))
}

// Wrap validates the spec and returns the engine-facing Join. It panics
// on an incomplete spec: a missing mandatory function is a library bug
// that must surface at registration, not mid-query.
func Wrap[KL, KR, S, P any](spec Spec[KL, KR, S, P]) Join {
	if spec.Name == "" {
		panic("core: spec needs a Name")
	}
	for name, fn := range map[string]bool{
		"NewSummary":   spec.NewSummary == nil,
		"LocalAggLeft": spec.LocalAggLeft == nil,
		"GlobalAgg":    spec.GlobalAgg == nil,
		"Divide":       spec.Divide == nil,
		"AssignLeft":   spec.AssignLeft == nil,
		"Verify":       spec.Verify == nil,
	} {
		if fn {
			panic(fmt.Sprintf("core: spec %q is missing %s", spec.Name, name))
		}
	}
	if spec.Dedup == DedupCustom && spec.DedupFn == nil {
		panic(fmt.Sprintf("core: spec %q sets DedupCustom without DedupFn", spec.Name))
	}
	return &wrapped[KL, KR, S, P]{spec: spec}
}

// wrapped is the proxy between the engine's untyped calls and a typed
// user spec. Its conversions are the translation layer of Fig. 7.
type wrapped[KL, KR, S, P any] struct {
	spec Spec[KL, KR, S, P]
}

func (w *wrapped[KL, KR, S, P]) Descriptor() Descriptor {
	return Descriptor{
		Name:               w.spec.Name,
		Params:             w.spec.Params,
		DefaultMatch:       w.spec.Match == nil,
		SymmetricSummarize: w.spec.LocalAggRight == nil,
		Dedup:              w.spec.Dedup,
		LocalJoin:          w.spec.LocalJoin != nil,
	}
}

func (w *wrapped[KL, KR, S, P]) NewSummary(Side) Summary { return w.spec.NewSummary() }

// castKey converts an engine-supplied key to the concrete type the
// library expects, failing loudly: a kind mismatch means the CREATE
// JOIN signature and the query disagree, which the planner should have
// rejected.
func castKey[K any](joinName string, side Side, key any) K {
	k, ok := key.(K)
	if !ok {
		panic(fmt.Sprintf("core: join %q %s key is %T, want %T", joinName, side, key, *new(K)))
	}
	return k
}

func (w *wrapped[KL, KR, S, P]) LocalAggregate(side Side, key any, s Summary) Summary {
	sum := s.(S)
	if side == Right && w.spec.LocalAggRight != nil {
		return w.spec.LocalAggRight(castKey[KR](w.spec.Name, side, key), sum)
	}
	return w.spec.LocalAggLeft(castKey[KL](w.spec.Name, side, key), sum)
}

func (w *wrapped[KL, KR, S, P]) GlobalAggregate(_ Side, a, b Summary) Summary {
	return w.spec.GlobalAgg(a.(S), b.(S))
}

func (w *wrapped[KL, KR, S, P]) Divide(left, right Summary, params []any) (PPlan, error) {
	if got := len(params); got != w.spec.Params {
		return nil, fmt.Errorf("core: join %q expects %d parameters, got %d", w.spec.Name, w.spec.Params, got)
	}
	return w.spec.Divide(left.(S), right.(S), params)
}

func (w *wrapped[KL, KR, S, P]) Assign(side Side, key any, plan PPlan, dst []BucketID) []BucketID {
	p := plan.(P)
	if side == Right && w.spec.AssignRight != nil {
		return w.spec.AssignRight(castKey[KR](w.spec.Name, side, key), p, dst)
	}
	if side == Right && w.spec.AssignRight == nil {
		// Symmetric assign: the right key must be a KL.
		return w.spec.AssignLeft(castKey[KL](w.spec.Name, side, key), p, dst)
	}
	return w.spec.AssignLeft(castKey[KL](w.spec.Name, side, key), p, dst)
}

func (w *wrapped[KL, KR, S, P]) Match(b1, b2 BucketID) bool {
	if w.spec.Match == nil {
		return DefaultMatch(b1, b2)
	}
	return w.spec.Match(b1, b2)
}

func (w *wrapped[KL, KR, S, P]) Verify(b1 BucketID, leftKey any, b2 BucketID, rightKey any, plan PPlan) bool {
	return w.spec.Verify(b1,
		castKey[KL](w.spec.Name, Left, leftKey), b2,
		castKey[KR](w.spec.Name, Right, rightKey), plan.(P))
}

func (w *wrapped[KL, KR, S, P]) Dedup(b1 BucketID, leftKey any, b2 BucketID, rightKey any, plan PPlan) bool {
	switch w.spec.Dedup {
	case DedupCustom:
		return w.spec.DedupFn(b1,
			castKey[KL](w.spec.Name, Left, leftKey), b2,
			castKey[KR](w.spec.Name, Right, rightKey), plan.(P))
	case DedupAvoidance:
		return DefaultDedup(w, b1, leftKey, b2, rightKey, plan)
	default:
		return true
	}
}

func (w *wrapped[KL, KR, S, P]) LocalJoin(b1 BucketID, leftKeys []any, b2 BucketID, rightKeys []any, plan PPlan, emit func(i, j int)) {
	if w.spec.LocalJoin == nil {
		panic(fmt.Sprintf("core: join %q has no LocalJoin", w.spec.Name))
	}
	ls := make([]KL, len(leftKeys))
	for i, k := range leftKeys {
		ls[i] = castKey[KL](w.spec.Name, Left, k)
	}
	rs := make([]KR, len(rightKeys))
	for i, k := range rightKeys {
		rs[i] = castKey[KR](w.spec.Name, Right, k)
	}
	w.spec.LocalJoin(b1, ls, b2, rs, plan.(P), emit)
}

// State serialization: summaries and plans cross node boundaries, so
// they get a real byte encoding. Types that implement the wire
// interfaces use the fast path; everything else falls back to gob.
// A one-byte tag distinguishes the two so decode is self-describing.
const (
	codecGob  = 0
	codecWire = 1
)

func encodeState[T any](v T) ([]byte, error) {
	// The wire fast path is used only when the round trip is closed:
	// T marshals and *T unmarshals. Otherwise gob handles both ends.
	if m, ok := any(v).(wire.Marshaler); ok {
		if _, ok := any(new(T)).(wire.Unmarshaler); ok {
			e := wire.NewEncoder(64)
			e.Byte(codecWire)
			m.MarshalWire(e)
			return e.Bytes(), nil
		}
	}
	var buf bytes.Buffer
	buf.WriteByte(codecGob)
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("core: gob encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

func decodeState[T any](buf []byte) (T, error) {
	var zero T
	if len(buf) == 0 {
		return zero, fmt.Errorf("core: empty state buffer")
	}
	switch buf[0] {
	case codecWire:
		ptr := any(&zero)
		u, ok := ptr.(wire.Unmarshaler)
		if !ok {
			return zero, fmt.Errorf("core: state tagged wire but %T cannot unmarshal", zero)
		}
		if err := u.UnmarshalWire(wire.NewDecoder(buf[1:])); err != nil {
			return zero, err
		}
		return zero, nil
	case codecGob:
		if err := gob.NewDecoder(bytes.NewReader(buf[1:])).Decode(&zero); err != nil {
			return zero, fmt.Errorf("core: gob decode: %w", err)
		}
		return zero, nil
	}
	return zero, fmt.Errorf("core: unknown state codec tag %d", buf[0])
}

func (w *wrapped[KL, KR, S, P]) EncodeSummary(s Summary) ([]byte, error) {
	return encodeState[S](s.(S))
}

func (w *wrapped[KL, KR, S, P]) DecodeSummary(buf []byte) (Summary, error) {
	return decodeState[S](buf)
}

func (w *wrapped[KL, KR, S, P]) EncodePlan(p PPlan) ([]byte, error) {
	return encodeState[P](p.(P))
}

func (w *wrapped[KL, KR, S, P]) DecodePlan(buf []byte) (PPlan, error) {
	return decodeState[P](buf)
}
