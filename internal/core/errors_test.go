package core

import (
	"errors"
	"strings"
	"testing"
)

// panicSpec is a minimal valid join that panics in a configurable
// phase.
func panicSpec(name string, mutate func(*Spec[int64, int64, int64, int64])) Join {
	s := Spec[int64, int64, int64, int64]{
		Name:       name,
		NewSummary: func() int64 { return 0 },
		LocalAggLeft: func(key, s int64) int64 {
			if s < key {
				return key
			}
			return s
		},
		GlobalAgg: func(a, b int64) int64 {
			if a < b {
				return b
			}
			return a
		},
		Divide:     func(l, r int64, _ []any) (int64, error) { return l + r, nil },
		AssignLeft: func(_ int64, _ int64, dst []BucketID) []BucketID { return append(dst, 0) },
		Verify:     func(_ BucketID, l int64, _ BucketID, r int64, _ int64) bool { return l == r },
	}
	mutate(&s)
	return Wrap(s)
}

func intKeys(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestStandalonePanicIsolation(t *testing.T) {
	cases := []struct {
		name      string
		phase     string
		hasRecord bool
		mutate    func(*Spec[int64, int64, int64, int64])
	}{
		{"summarize", "summarize", true, func(s *Spec[int64, int64, int64, int64]) {
			s.LocalAggLeft = func(int64, int64) int64 { panic("agg boom") }
		}},
		{"divide", "divide", false, func(s *Spec[int64, int64, int64, int64]) {
			s.Divide = func(int64, int64, []any) (int64, error) { panic("divide boom") }
		}},
		{"assign", "assign", true, func(s *Spec[int64, int64, int64, int64]) {
			s.AssignLeft = func(int64, int64, []BucketID) []BucketID { panic("assign boom") }
		}},
		{"verify", "combine", true, func(s *Spec[int64, int64, int64, int64]) {
			s.Verify = func(BucketID, int64, BucketID, int64, int64) bool { panic("verify boom") }
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := panicSpec("panic_"+tc.name, tc.mutate)
			_, err := RunStandalone(j, intKeys(5), intKeys(5), nil, func(l, r any) {})
			if err == nil {
				t.Fatal("RunStandalone swallowed the panic")
			}
			var ue *UDFError
			if !errors.As(err, &ue) {
				t.Fatalf("error is %T, want *UDFError: %v", err, err)
			}
			if ue.Phase != tc.phase {
				t.Errorf("phase = %q, want %q", ue.Phase, tc.phase)
			}
			if ue.Partition != -1 {
				t.Errorf("partition = %d, want -1 (standalone)", ue.Partition)
			}
			if tc.hasRecord && ue.Record < 0 {
				t.Errorf("record = %d, want a record index", ue.Record)
			}
			if ue.Stack == "" {
				t.Error("no stack captured")
			}
			if !strings.Contains(ue.Error(), "boom") {
				t.Errorf("message %q should carry the panic value", ue.Error())
			}
		})
	}
}

func TestUDFErrorRendering(t *testing.T) {
	e := &UDFError{Join: "j", Phase: "assign", Partition: 3, Record: 7, Panic: "pow"}
	msg := e.Error()
	for _, want := range []string{"fudj j", "assign", "partition 3", "record 7", "pow"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q should contain %q", msg, want)
		}
	}
	coord := &UDFError{Join: "j", Phase: "divide", Partition: -1, Record: -1, Panic: "pow"}
	if !strings.Contains(coord.Error(), "coordinator") {
		t.Errorf("coordinator message: %q", coord.Error())
	}
}

func TestCatchPanicNoPanic(t *testing.T) {
	var err error
	func() {
		defer CatchPanic("j", "assign", 0, nil, &err)
	}()
	if err != nil {
		t.Errorf("CatchPanic set an error without a panic: %v", err)
	}
}
