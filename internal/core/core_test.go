package core

import (
	"math/rand"
	"testing"

	"fudj/internal/wire"
)

// testEquiJoin is a trivial single-assign, default-match FUDJ over
// int64 keys modulo a bucket count carried in the plan. Its verify is
// exact key equality, so it behaves like a distributed hash join.
type equiSummary struct {
	Count int64
}

type equiPlan struct {
	Buckets int64
}

func newEquiJoin() Join {
	return Wrap(Spec[int64, int64, equiSummary, equiPlan]{
		Name:       "test_equi",
		Params:     0,
		NewSummary: func() equiSummary { return equiSummary{} },
		LocalAggLeft: func(k int64, s equiSummary) equiSummary {
			s.Count++
			return s
		},
		GlobalAgg: func(a, b equiSummary) equiSummary { return equiSummary{Count: a.Count + b.Count} },
		Divide: func(l, r equiSummary, _ []any) (equiPlan, error) {
			n := (l.Count + r.Count) / 4
			if n < 1 {
				n = 1
			}
			return equiPlan{Buckets: n}, nil
		},
		AssignLeft: func(k int64, p equiPlan, dst []BucketID) []BucketID {
			return append(dst, int(((k%p.Buckets)+p.Buckets)%p.Buckets))
		},
		Verify: func(_ BucketID, l int64, _ BucketID, r int64, _ equiPlan) bool { return l == r },
	})
}

// rangeSummary/rangePlan define a 1-D multi-assign overlap join over
// [2]int64 ranges, with a custom (theta) MATCH — the minimal shape of
// the interval FUDJ, used here to exercise the multi-join path.
type rangeSummary struct {
	Min, Max int64
}

type rangePlan struct {
	Min, Width int64
	N          int
}

func (p rangePlan) bucket(v int64) int {
	b := int((v - p.Min) / p.Width)
	if b < 0 {
		b = 0
	}
	if b >= p.N {
		b = p.N - 1
	}
	return b
}

func newRangeJoin(dedup DedupMode) Join {
	return Wrap(Spec[[2]int64, [2]int64, rangeSummary, rangePlan]{
		Name:       "test_range",
		Params:     1, // bucket count
		Dedup:      dedup,
		NewSummary: func() rangeSummary { return rangeSummary{Min: 1 << 60, Max: -(1 << 60)} },
		LocalAggLeft: func(k [2]int64, s rangeSummary) rangeSummary {
			if k[0] < s.Min {
				s.Min = k[0]
			}
			if k[1] > s.Max {
				s.Max = k[1]
			}
			return s
		},
		GlobalAgg: func(a, b rangeSummary) rangeSummary {
			if b.Min < a.Min {
				a.Min = b.Min
			}
			if b.Max > a.Max {
				a.Max = b.Max
			}
			return a
		},
		Divide: func(l, r rangeSummary, params []any) (rangePlan, error) {
			n := params[0].(int)
			min, max := l.Min, l.Max
			if r.Min < min {
				min = r.Min
			}
			if r.Max > max {
				max = r.Max
			}
			w := (max - min + 1) / int64(n)
			if w < 1 {
				w = 1
			}
			return rangePlan{Min: min, Width: w, N: n}, nil
		},
		// Multi-assign: a range is copied to every bucket it spans.
		AssignLeft: func(k [2]int64, p rangePlan, dst []BucketID) []BucketID {
			for b := p.bucket(k[0]); b <= p.bucket(k[1]); b++ {
				dst = append(dst, b)
			}
			return dst
		},
		Match: func(b1, b2 BucketID) bool { return b1 == b2 }, // custom, but equality
		Verify: func(_ BucketID, l [2]int64, _ BucketID, r [2]int64, _ rangePlan) bool {
			return l[0] <= r[1] && l[1] >= r[0]
		},
	})
}

func TestWrapValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("no name", func() {
		Wrap(Spec[int64, int64, int, int]{})
	})
	mustPanic("missing verify", func() {
		Wrap(Spec[int64, int64, int, int]{
			Name:         "x",
			NewSummary:   func() int { return 0 },
			LocalAggLeft: func(int64, int) int { return 0 },
			GlobalAgg:    func(a, b int) int { return 0 },
			Divide:       func(int, int, []any) (int, error) { return 0, nil },
			AssignLeft:   func(int64, int, []BucketID) []BucketID { return nil },
		})
	})
	mustPanic("custom dedup without fn", func() {
		Wrap(Spec[int64, int64, int, int]{
			Name:         "x",
			Dedup:        DedupCustom,
			NewSummary:   func() int { return 0 },
			LocalAggLeft: func(int64, int) int { return 0 },
			GlobalAgg:    func(a, b int) int { return 0 },
			Divide:       func(int, int, []any) (int, error) { return 0, nil },
			AssignLeft:   func(int64, int, []BucketID) []BucketID { return nil },
			Verify:       func(BucketID, int64, BucketID, int64, int) bool { return true },
		})
	})
}

func TestDescriptor(t *testing.T) {
	eq := newEquiJoin()
	d := eq.Descriptor()
	if !d.DefaultMatch {
		t.Error("equi join should report DefaultMatch")
	}
	if !d.SymmetricSummarize {
		t.Error("equi join should report SymmetricSummarize (no right-side funcs)")
	}
	rg := newRangeJoin(DedupAvoidance)
	if rg.Descriptor().DefaultMatch {
		t.Error("range join overrides Match, must not report DefaultMatch")
	}
	if rg.Descriptor().Dedup != DedupAvoidance {
		t.Error("dedup mode lost")
	}
}

func TestStandaloneEquiJoin(t *testing.T) {
	left := []any{int64(1), int64(2), int64(3), int64(2)}
	right := []any{int64(2), int64(3), int64(5)}
	var got [][2]int64
	stats, err := RunStandalone(newEquiJoin(), left, right, nil, func(l, r any) {
		got = append(got, [2]int64{l.(int64), r.(int64)})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: 2-2 (x2 for the duplicate left 2), 3-3.
	if len(got) != 3 {
		t.Fatalf("got %d results %v, want 3", len(got), got)
	}
	for _, pair := range got {
		if pair[0] != pair[1] {
			t.Errorf("non-equal pair %v", pair)
		}
	}
	if stats.Results != 3 || stats.Verified != 3 {
		t.Errorf("stats = %v", stats)
	}
}

func TestStandaloneParamsMismatch(t *testing.T) {
	_, err := RunStandalone(newRangeJoin(DedupAvoidance), []any{[2]int64{0, 1}}, []any{[2]int64{0, 1}}, nil, func(any, any) {})
	if err == nil {
		t.Fatal("missing parameter should fail in Divide")
	}
}

// bruteRanges computes the reference overlap-join result multiset.
func bruteRanges(left, right [][2]int64) map[[4]int64]int {
	out := map[[4]int64]int{}
	for _, l := range left {
		for _, r := range right {
			if l[0] <= r[1] && l[1] >= r[0] {
				out[[4]int64{l[0], l[1], r[0], r[1]}]++
			}
		}
	}
	return out
}

func runRange(t *testing.T, j Join, left, right [][2]int64, buckets int) (map[[4]int64]int, Stats) {
	t.Helper()
	la := make([]any, len(left))
	for i, v := range left {
		la[i] = v
	}
	ra := make([]any, len(right))
	for i, v := range right {
		ra[i] = v
	}
	got := map[[4]int64]int{}
	stats, err := RunStandalone(j, la, ra, []any{buckets}, func(l, r any) {
		lv, rv := l.([2]int64), r.([2]int64)
		got[[4]int64{lv[0], lv[1], rv[0], rv[1]}]++
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func randRanges(rng *rand.Rand, n int, span, maxLen int64) [][2]int64 {
	out := make([][2]int64, n)
	for i := range out {
		s := rng.Int63n(span)
		out[i] = [2]int64{s, s + rng.Int63n(maxLen)}
	}
	return out
}

// Property: with duplicate avoidance, the multi-assign range join
// produces exactly the brute-force result multiset — no misses, no
// duplicates. This is the core correctness contract of the framework.
func TestStandaloneRangeJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, mode := range []DedupMode{DedupAvoidance, DedupElimination} {
		for trial := 0; trial < 15; trial++ {
			left := randRanges(rng, 60, 1000, 120)
			right := randRanges(rng, 40, 1000, 120)
			want := bruteRanges(left, right)
			got, _ := runRange(t, newRangeJoin(mode), left, right, 8)
			// Multiset equality modulo duplicate *values*: identical range
			// values join multiple times legitimately, so compare per-key
			// counts directly — they must agree.
			if len(got) != len(want) {
				t.Fatalf("mode %v trial %d: %d distinct pairs, want %d", mode, trial, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("mode %v trial %d: pair %v count %d, want %d", mode, trial, k, got[k], n)
				}
			}
		}
	}
}

// With dedup disabled, multi-assign must over-produce whenever a
// joining pair co-occupies several buckets.
func TestStandaloneRangeJoinDedupNoneOverproduces(t *testing.T) {
	left := [][2]int64{{0, 500}}  // spans many buckets
	right := [][2]int64{{0, 500}} // same
	got, stats := runRange(t, newRangeJoin(DedupNone), left, right, 8)
	if got[[4]int64{0, 500, 0, 500}] <= 1 {
		t.Errorf("expected duplicated results without dedup, got %v (stats %v)", got, stats)
	}
	gotAvoid, statsAvoid := runRange(t, newRangeJoin(DedupAvoidance), left, right, 8)
	if gotAvoid[[4]int64{0, 500, 0, 500}] != 1 {
		t.Errorf("avoidance should emit exactly once, got %v", gotAvoid)
	}
	if statsAvoid.Deduped == 0 {
		t.Error("avoidance should report suppressed duplicates")
	}
}

// Elimination-mode dedup cannot distinguish equal-valued records from
// different input positions incorrectly: it keys on input indexes.
func TestStandaloneEliminationKeepsEqualValues(t *testing.T) {
	// Two identical left records must each produce a result.
	left := [][2]int64{{0, 100}, {0, 100}}
	right := [][2]int64{{50, 60}}
	got, _ := runRange(t, newRangeJoin(DedupElimination), left, right, 4)
	if got[[4]int64{0, 100, 50, 60}] != 2 {
		t.Errorf("identical records collapsed: %v", got)
	}
}

func TestStandaloneSelfJoinSummaryReuse(t *testing.T) {
	data := []any{int64(1), int64(2), int64(3)}
	stats, err := RunStandalone(newEquiJoin(), data, data, nil, func(any, any) {})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SummaryReused {
		t.Error("self-join with symmetric summarize should reuse the summary")
	}
	other := []any{int64(1), int64(2), int64(3)}
	stats, err = RunStandalone(newEquiJoin(), data, other, nil, func(any, any) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SummaryReused {
		t.Error("distinct inputs must not reuse the summary")
	}
}

func TestKeyCastPanicsWithContext(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want panic on key type mismatch")
		}
	}()
	j := newEquiJoin()
	j.LocalAggregate(Left, "not an int64", j.NewSummary(Left))
}

func TestStateCodecGob(t *testing.T) {
	j := newEquiJoin()
	buf, err := j.EncodeSummary(equiSummary{Count: 42})
	if err != nil {
		t.Fatal(err)
	}
	s, err := j.DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.(equiSummary).Count != 42 {
		t.Errorf("summary round trip = %+v", s)
	}
	pbuf, err := j.EncodePlan(equiPlan{Buckets: 7})
	if err != nil {
		t.Fatal(err)
	}
	p, err := j.DecodePlan(pbuf)
	if err != nil {
		t.Fatal(err)
	}
	if p.(equiPlan).Buckets != 7 {
		t.Errorf("plan round trip = %+v", p)
	}
}

// wireSummary exercises the wire fast path of the state codec.
type wireSummary struct {
	N int64
}

func (s wireSummary) MarshalWire(e *wire.Encoder) { e.Varint(s.N) }
func (s *wireSummary) UnmarshalWire(d *wire.Decoder) error {
	var err error
	s.N, err = d.Varint()
	return err
}

func TestStateCodecWireFastPath(t *testing.T) {
	j := Wrap(Spec[int64, int64, wireSummary, equiPlan]{
		Name:         "wire_codec",
		NewSummary:   func() wireSummary { return wireSummary{} },
		LocalAggLeft: func(k int64, s wireSummary) wireSummary { s.N++; return s },
		GlobalAgg:    func(a, b wireSummary) wireSummary { return wireSummary{N: a.N + b.N} },
		Divide:       func(l, r wireSummary, _ []any) (equiPlan, error) { return equiPlan{Buckets: 1}, nil },
		AssignLeft:   func(int64, equiPlan, []BucketID) []BucketID { return []BucketID{0} },
		Verify:       func(BucketID, int64, BucketID, int64, equiPlan) bool { return true },
	})
	buf, err := j.EncodeSummary(wireSummary{N: 99})
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != codecWire {
		t.Fatalf("expected wire codec tag, got %d", buf[0])
	}
	s, err := j.DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.(wireSummary).N != 99 {
		t.Errorf("wire summary round trip = %+v", s)
	}
}

func TestDecodeStateErrors(t *testing.T) {
	j := newEquiJoin()
	if _, err := j.DecodeSummary(nil); err == nil {
		t.Error("empty buffer should error")
	}
	if _, err := j.DecodeSummary([]byte{9, 1, 2}); err == nil {
		t.Error("unknown tag should error")
	}
}

func TestLibrary(t *testing.T) {
	lib := NewLibrary("flexiblejoins")
	if lib.Name() != "flexiblejoins" {
		t.Error("Name")
	}
	if err := lib.Register("equi.EquiJoin", newEquiJoin); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register("equi.EquiJoin", newEquiJoin); err == nil {
		t.Error("duplicate class should error")
	}
	if err := lib.Register("", newEquiJoin); err == nil {
		t.Error("empty class should error")
	}
	c, err := lib.Resolve("equi.EquiJoin")
	if err != nil || c == nil {
		t.Fatalf("Resolve: %v", err)
	}
	if _, err := lib.Resolve("missing.Class"); err == nil {
		t.Error("missing class should error")
	}
	if got := lib.Classes(); len(got) != 1 || got[0] != "equi.EquiJoin" {
		t.Errorf("Classes = %v", got)
	}
}

func TestDedupModeString(t *testing.T) {
	if DedupAvoidance.String() != "avoidance" || DedupNone.String() != "none" ||
		DedupCustom.String() != "custom" || DedupElimination.String() != "elimination" {
		t.Error("DedupMode strings")
	}
	if Left.String() != "left" || Right.String() != "right" {
		t.Error("Side strings")
	}
}
