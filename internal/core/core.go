// Package core implements the FUDJ programming model — the paper's
// primary contribution. A join library author implements the small set
// of functions from §IV (SUMMARIZE, DIVIDE, ASSIGN, MATCH, VERIFY,
// DEDUP) against plain Go values; the engine supplies everything else:
// distributed two-step aggregation, partitioning, bucket matching,
// verification, and duplicate handling.
//
// The package is deliberately independent of the engine's value system:
// like the paper's standalone prototype (§VI-D2), a Join here can be
// executed by the in-process RunStandalone driver for development and
// debugging, and then installed unchanged into the distributed engine,
// which bridges its native records to these plain values through the
// translation layer of Fig. 7 (see internal/engine).
package core

import "fmt"

// BucketID identifies one logical bucket produced by the PARTITION
// phase (Definition 5 in the paper).
type BucketID = int

// Side distinguishes the two inputs of a join. Several model functions
// may be implemented differently per side (e.g. different key types).
type Side int

// The two join sides.
const (
	Left Side = iota
	Right
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// Summary is the opaque per-side aggregation state built during
// SUMMARIZE (Definition 2). Concrete joins use their own types; the
// engine moves summaries between nodes with the join's codec.
type Summary = any

// PPlan is the opaque partitioning plan returned by DIVIDE
// (Definition 4) and broadcast to every node.
type PPlan = any

// DedupMode selects how the framework handles the duplicate result
// pairs that multi-assign partitioning can produce (§III-B, Fig. 5).
type DedupMode int

const (
	// DedupNone disables duplicate handling: the join either is
	// single-assign (no duplicates possible) or the caller accepts
	// duplicates for speed.
	DedupNone DedupMode = iota
	// DedupAvoidance is the framework default: a matched pair is kept
	// only in its canonical bucket pair, computed by re-running assign
	// on both keys (no post-join shuffle needed).
	DedupAvoidance
	// DedupCustom delegates to the join's own Dedup function, e.g. the
	// Reference Point method for spatial joins.
	DedupCustom
	// DedupElimination lets duplicates flow out of the join and removes
	// them with a distinct stage afterwards (requires an extra shuffle;
	// kept for the Fig. 12a comparison).
	DedupElimination
)

// String implements fmt.Stringer.
func (m DedupMode) String() string {
	switch m {
	case DedupNone:
		return "none"
	case DedupAvoidance:
		return "avoidance"
	case DedupCustom:
		return "custom"
	case DedupElimination:
		return "elimination"
	}
	return fmt.Sprintf("dedup(%d)", int(m))
}

// Descriptor carries the static properties of a join library that the
// query optimizer inspects (§VI-C): whether the MATCH function is the
// default equality (enabling the Hash Join operator and hash
// partitioning), whether both sides are summarized identically
// (enabling the self-join optimization), and how duplicates are handled.
type Descriptor struct {
	// Name is the algorithm name, e.g. "spatial_pbsm".
	Name string
	// Params is the number of extra scalar parameters after the two
	// keys in the join predicate's signature (e.g. 1 for the similarity
	// threshold).
	Params int
	// DefaultMatch reports that MATCH is bucket equality, so the
	// optimizer may compel a Hash Join for bucket matching. When false
	// the join is a multi-join and needs the theta operator.
	DefaultMatch bool
	// SymmetricSummarize reports that both sides share one SUMMARIZE
	// implementation, enabling summary reuse on self-joins.
	SymmetricSummarize bool
	// Dedup selects the duplicate handling strategy.
	Dedup DedupMode
	// LocalJoin reports that the join supplies a custom local bucket
	// joining algorithm (§VII-F), which the executor uses instead of
	// the nested verify loop.
	LocalJoin bool
}

// Join is the engine-facing contract of a FUDJ library: the six model
// functions plus codecs for the two opaque states. Library authors do
// not usually implement this directly — they implement the typed
// interfaces in typed.go and let Wrap build the translation layer —
// but nothing stops a power user from implementing it natively.
type Join interface {
	// Descriptor returns the static join properties.
	Descriptor() Descriptor

	// NewSummary returns the identity summary for one side.
	NewSummary(side Side) Summary
	// LocalAggregate folds one key into a node-local summary and
	// returns the updated summary (the paper's local_aggregate).
	LocalAggregate(side Side, key any, s Summary) Summary
	// GlobalAggregate merges two summaries (the paper's
	// global_aggregate). It must be associative and commutative.
	GlobalAggregate(side Side, a, b Summary) Summary

	// Divide combines both global summaries and any query parameters
	// into the partitioning plan (the paper's divide).
	Divide(left, right Summary, params []any) (PPlan, error)

	// Assign appends the bucket ids for key to dst and returns the
	// extended slice (the paper's assign). One id = single-assign;
	// several = multi-assign.
	Assign(side Side, key any, plan PPlan, dst []BucketID) []BucketID

	// Match reports whether two buckets may hold joining records
	// (the paper's match). Implementations with DefaultMatch true must
	// return b1 == b2.
	Match(b1, b2 BucketID) bool

	// Verify reports whether a candidate pair truly joins
	// (the paper's verify).
	Verify(b1 BucketID, leftKey any, b2 BucketID, rightKey any, plan PPlan) bool

	// Dedup reports whether the pair should be emitted from this bucket
	// pair (true = keep). Only consulted under DedupAvoidance/DedupCustom.
	Dedup(b1 BucketID, leftKey any, b2 BucketID, rightKey any, plan PPlan) bool

	// LocalJoin runs the join's custom local bucket-joining algorithm
	// over one matched bucket pair, emitting verified position pairs.
	// Only called when Descriptor().LocalJoin is true.
	LocalJoin(b1 BucketID, leftKeys []any, b2 BucketID, rightKeys []any, plan PPlan, emit func(i, j int))

	// EncodeSummary and DecodeSummary serialize summaries for network
	// transfer between the local and global aggregation steps.
	EncodeSummary(s Summary) ([]byte, error)
	DecodeSummary(buf []byte) (Summary, error)

	// EncodePlan and DecodePlan serialize the partitioning plan for
	// broadcast to all nodes.
	EncodePlan(p PPlan) ([]byte, error)
	DecodePlan(buf []byte) (PPlan, error)
}

// DefaultMatch is the framework-provided MATCH: plain bucket equality,
// which turns the COMBINE phase into a single-join that the optimizer
// can execute with its hash join operator.
func DefaultMatch(b1, b2 BucketID) bool { return b1 == b2 }

// CanonicalPair returns the first bucket pair (in left-outer,
// right-inner order over the assign lists) that MATCH accepts — the
// canonical bucket pair in which a joining record pair is reported
// under duplicate avoidance. ok is false when no pair matches, which
// only happens for a non-deterministic Assign (a library bug).
func CanonicalPair(j Join, lb, rb []BucketID) (b1, b2 BucketID, ok bool) {
	for _, x := range lb {
		for _, y := range rb {
			if j.Match(x, y) {
				return x, y, true
			}
		}
	}
	return 0, 0, false
}

// DefaultDedup implements the framework's duplicate-avoidance method
// (§IV-C): re-run assign on both keys, and keep the pair only in the
// canonical bucket pair. Requires no extra shuffle stage. Engines that
// already hold the assign lists (the distributed executor carries them
// through the partition phase) use CanonicalPair directly and skip the
// re-assignment.
func DefaultDedup(j Join, b1 BucketID, leftKey any, b2 BucketID, rightKey any, plan PPlan) bool {
	lb := j.Assign(Left, leftKey, plan, nil)
	rb := j.Assign(Right, rightKey, plan, nil)
	x, y, ok := CanonicalPair(j, lb, rb)
	if !ok {
		// The current pair was produced, so a matching pair must exist;
		// err on the side of keeping the result.
		return true
	}
	return x == b1 && y == b2
}
