package core

import (
	"fmt"
	"runtime/debug"
)

// UDFError is a panic inside user-defined join code, converted into a
// structured error naming the join, the pipeline phase, and — when the
// engine knows them — the partition and record index being processed.
// A UDF panic is deterministic, so the error is not retryable: the
// executor fails the query instead of burning retry attempts on it.
type UDFError struct {
	// Join is the join algorithm name from the library descriptor.
	Join string
	// Phase is the pipeline phase executing the UDF: "summarize",
	// "divide", "assign", "match", "combine", or "builtin".
	Phase string
	// Partition is the partition whose task ran the UDF, or -1 when the
	// call happened at the coordinator.
	Partition int
	// Record is the index of the record being processed within the
	// partition's input, or -1 when the call is not record-scoped.
	Record int
	// Panic is the recovered panic value.
	Panic any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error implements the error interface.
func (e *UDFError) Error() string {
	loc := "coordinator"
	if e.Partition >= 0 {
		loc = fmt.Sprintf("partition %d", e.Partition)
	}
	if e.Record >= 0 {
		loc += fmt.Sprintf(", record %d", e.Record)
	}
	return fmt.Sprintf("fudj %s: panic in %s (%s): %v", e.Join, e.Phase, loc, e.Panic)
}

// ResourceError reports that a query exceeded its memory budget beyond
// what graceful degradation (spilling, bucket splitting) can absorb —
// e.g. a single record larger than a partition's hard cap. It is
// deterministic (re-running the task would hit the same wall), so the
// executor fails the query instead of retrying.
type ResourceError struct {
	// Join is the join algorithm name, or "" outside a join.
	Join string
	// Phase is the pipeline phase that hit the cap, e.g. "combine".
	Phase string
	// Partition is the partition whose task exceeded its budget, or -1.
	Partition int
	// Bytes is the allocation size that broke the cap.
	Bytes int64
	// Budget is the per-partition hard cap in force.
	Budget int64
}

// Error implements the error interface.
func (e *ResourceError) Error() string {
	loc := "coordinator"
	if e.Partition >= 0 {
		loc = fmt.Sprintf("partition %d", e.Partition)
	}
	join := e.Join
	if join == "" {
		join = "query"
	}
	return fmt.Sprintf("fudj %s: memory budget exceeded in %s (%s): need %d bytes, hard cap %d",
		join, e.Phase, loc, e.Bytes, e.Budget)
}

// CatchPanic is a deferred guard converting a panic inside user-defined
// join code into a structured *UDFError assigned to *err. record may be
// nil (not record-scoped) or point at a loop variable the caller keeps
// updated, so the error names the exact record being processed when the
// UDF blew up:
//
//	func(part int, in []types.Record) (out []types.Record, err error) {
//		rec := -1
//		defer core.CatchPanic(name, "assign", part, &rec, &err)
//		for i, r := range in { rec = i; ... }
//	}
func CatchPanic(join, phase string, partition int, record *int, err *error) {
	p := recover()
	if p == nil {
		return
	}
	rec := -1
	if record != nil {
		rec = *record
	}
	*err = &UDFError{
		Join:      join,
		Phase:     phase,
		Partition: partition,
		Record:    rec,
		Panic:     p,
		Stack:     string(debug.Stack()),
	}
}
