package types

import "sync"

// BatchPool recycles Batch buffers across shuffle frames so the hot
// path reuses column vectors instead of reallocating them per frame.
// It keeps a small free list (batches are a few slice headers each;
// their payload capacity is what's worth keeping warm) and counts gets
// and free-list hits so the engine can surface a pool reuse ratio.
type BatchPool struct {
	mu   sync.Mutex
	free []*Batch
	gets int64
	hits int64
}

// batchPoolCap bounds the free list; beyond it Put drops the batch for
// the garbage collector. Shuffle uses a handful of in-flight batches
// per exchange, so a short list captures the reuse.
const batchPoolCap = 16

// NewBatchPool returns an empty pool.
func NewBatchPool() *BatchPool { return &BatchPool{} }

// Get returns a reset batch of the given width, reusing a pooled one
// when available.
func (p *BatchPool) Get(width int) *Batch {
	p.mu.Lock()
	p.gets++
	var b *Batch
	if n := len(p.free); n > 0 {
		b = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.hits++
	}
	p.mu.Unlock()
	if b == nil {
		return NewBatch(width)
	}
	b.Reset(width)
	return b
}

// Put returns a batch to the pool. The caller must not use b after
// Put; any records materialized from it remain valid (materialization
// copies into fresh arenas).
func (p *BatchPool) Put(b *Batch) {
	if b == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < batchPoolCap {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// Stats reports the number of Get calls and how many were served from
// the free list.
func (p *BatchPool) Stats() (gets, hits int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.hits
}
