package types

import (
	"strings"
	"testing"

	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/wire"
)

// richRecords returns uniform-width records covering every value kind,
// including a kind-mixed column (col 3) that forces generic migration.
func richRecords() []Record {
	poly := geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 4}})
	line := geo.NewLineString([]geo.Point{{X: 1, Y: 1}, {X: 2, Y: 3}})
	return []Record{
		{NewInt64(1), NewString("alpha"), NewRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}),
			NewInt64(7), NewPolygon(poly), NewBool(true), NewPoint(geo.Point{X: 5, Y: 6}),
			NewInterval(interval.Interval{Start: 3, End: 9}), Null, NewFloat64(2.5)},
		{NewInt64(2), NewString("beta"), NewRect(geo.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}),
			NewString("mixed"), NewLineString(line), NewBool(false), NewPoint(geo.Point{X: -1, Y: 0}),
			NewInterval(interval.Interval{Start: -5, End: 5}), Null, NewFloat64(-0.25)},
		{NewInt64(3), NewString(""), NewRect(geo.Rect{MinX: -3, MinY: -3, MaxX: 0, MaxY: 0}),
			Null, NewList([]Value{NewInt64(1), NewString("x")}), NewBool(true),
			NewPoint(geo.Point{X: 0, Y: 0}), NewInterval(interval.Interval{Start: 0, End: 0}),
			Null, NewFloat64(1e300)},
	}
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("record %d width %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if !got[i][j].Equal(want[i][j]) {
				t.Fatalf("record %d field %d: %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestBatchRoundTripAllKinds(t *testing.T) {
	recs := richRecords()
	buf := EncodeBatch(recs, nil)
	if buf[0] != batchFormatColumnar {
		t.Fatalf("uniform records encoded with format 0x%02x, want columnar", buf[0])
	}
	got, err := DecodeBatch(buf, nil)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	sameRecords(t, got, recs)
}

func TestBatchRowWiseFallbackRagged(t *testing.T) {
	recs := []Record{
		{NewInt64(1), NewString("a")},
		{NewInt64(2)},
		{NewInt64(3), NewString("c"), NewBool(true)},
	}
	buf := EncodeBatch(recs, nil)
	if buf[0] != batchFormatRowWise {
		t.Fatalf("ragged records encoded with format 0x%02x, want row-wise", buf[0])
	}
	got, err := DecodeBatch(buf, nil)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	sameRecords(t, got, recs)
}

func TestBatchEmpty(t *testing.T) {
	got, err := DecodeBatch(EncodeBatch(nil, nil), nil)
	if err != nil {
		t.Fatalf("DecodeBatch(empty): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty batch decoded to %d records", len(got))
	}
}

func TestBatchMemSizeMatchesRecords(t *testing.T) {
	recs := richRecords()
	b := NewBatch(len(recs[0]))
	for _, r := range recs {
		b.AppendRecord(r)
	}
	if want := RecordsMemSize(recs); b.MemSize() != want {
		t.Fatalf("append-path MemSize = %d, want %d", b.MemSize(), want)
	}

	// The decode path must account in the same currency.
	dec := NewBatch(0)
	d := wire.NewDecoder(EncodeBatch(recs, nil))
	if err := dec.UnmarshalWire(d); err != nil {
		t.Fatalf("UnmarshalWire: %v", err)
	}
	if want := RecordsMemSize(dec.Records()); dec.MemSize() != want {
		t.Fatalf("decode-path MemSize = %d, want %d", dec.MemSize(), want)
	}
}

func TestBatchValueAndRecordAccessors(t *testing.T) {
	recs := richRecords()
	b := NewBatch(len(recs[0]))
	for _, r := range recs {
		b.AppendRecord(r)
	}
	if b.Rows() != len(recs) || b.Width() != len(recs[0]) {
		t.Fatalf("Rows/Width = %d/%d, want %d/%d", b.Rows(), b.Width(), len(recs), len(recs[0]))
	}
	for i, r := range recs {
		for j, v := range r {
			if !b.Value(i, j).Equal(v) {
				t.Fatalf("Value(%d,%d) = %v, want %v", i, j, b.Value(i, j), v)
			}
		}
		if got := b.Record(i); !got[1].Equal(r[1]) {
			t.Fatalf("Record(%d) = %v, want %v", i, got, r)
		}
	}
	sameRecords(t, b.Records(), recs)
}

func TestBatchAppendFrom(t *testing.T) {
	recs := richRecords()
	src := NewBatch(len(recs[0]))
	for _, r := range recs {
		src.AppendRecord(r)
	}
	dst := NewBatch(src.Width())
	for i := src.Rows() - 1; i >= 0; i-- {
		dst.AppendFrom(src, i)
	}
	want := []Record{recs[2], recs[1], recs[0]}
	sameRecords(t, dst.Records(), want)
	if dst.MemSize() != RecordsMemSize(want) {
		t.Fatalf("AppendFrom MemSize = %d, want %d", dst.MemSize(), RecordsMemSize(want))
	}
}

func TestBatchResetReuse(t *testing.T) {
	b := NewBatch(0)
	recs := batch(64)
	if !BatchFromRecords(b, recs) {
		t.Fatal("uniform records reported ragged")
	}
	sameRecords(t, b.Records(), recs)
	// Reuse with a different shape: mixed-kind column exercises the
	// generic migration after a reset.
	next := []Record{
		{NewInt64(1), NewInt64(2)},
		{NewInt64(3), NewString("now generic")},
	}
	if !BatchFromRecords(b, next) {
		t.Fatal("uniform records reported ragged")
	}
	sameRecords(t, b.Records(), next)
	if b.MemSize() != RecordsMemSize(next) {
		t.Fatalf("reused batch MemSize = %d, want %d", b.MemSize(), RecordsMemSize(next))
	}
}

func TestBatchFromRecordsRagged(t *testing.T) {
	b := NewBatch(0)
	if BatchFromRecords(b, []Record{{NewInt64(1)}, {NewInt64(1), NewInt64(2)}}) {
		t.Fatal("ragged records reported uniform")
	}
}

func TestDecodeBatchCorruption(t *testing.T) {
	recs := richRecords()
	buf := EncodeBatch(recs, nil)

	if _, err := DecodeBatch(buf[:len(buf)/2], nil); err == nil {
		t.Fatal("truncated batch decoded without error")
	}
	if _, err := DecodeBatch(buf[:1], nil); err == nil {
		t.Fatal("header-only batch decoded without error")
	}
	if _, err := DecodeBatch(nil, nil); err == nil {
		t.Fatal("empty input decoded without error")
	}
	if _, err := DecodeBatch([]byte{0x7c}, nil); err == nil {
		t.Fatal("unknown format byte decoded without error")
	}

	// Absurd width: claims ~2^63 columns in a tiny buffer.
	e := wire.NewEncoder(16)
	e.Byte(batchFormatColumnar)
	e.Raw([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := DecodeBatch(e.Bytes(), nil); err == nil {
		t.Fatal("absurd width decoded without error")
	}

	// Absurd rows: one int64 column, row count far beyond the buffer.
	e = wire.NewEncoder(16)
	e.Byte(batchFormatColumnar)
	e.Uvarint(1)
	e.Byte(byte(KindInt64))
	e.Raw([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := DecodeBatch(e.Bytes(), nil); err == nil {
		t.Fatal("absurd row count decoded without error")
	}

	// Zero columns but a nonzero row claim is structurally invalid.
	e = wire.NewEncoder(16)
	e.Byte(batchFormatColumnar)
	e.Uvarint(0)
	e.Uvarint(3)
	if _, err := DecodeBatch(e.Bytes(), nil); err == nil {
		t.Fatal("0-column batch with rows decoded without error")
	}

	// An invalid column tag (a reference kind never written as a typed
	// column) must be rejected.
	e = wire.NewEncoder(16)
	e.Byte(batchFormatColumnar)
	e.Uvarint(1)
	e.Byte(byte(KindPolygon))
	e.Uvarint(0)
	if _, err := DecodeBatch(e.Bytes(), nil); err == nil {
		t.Fatal("typed polygon column tag decoded without error")
	}
}

func TestBatchPoolReuse(t *testing.T) {
	p := NewBatchPool()
	b := p.Get(3)
	if b.Width() != 3 {
		t.Fatalf("pooled batch width %d, want 3", b.Width())
	}
	b.AppendRecord(Record{NewInt64(1), NewString("x"), NewBool(true)})
	p.Put(b)
	again := p.Get(2)
	if again != b {
		t.Fatal("pool did not reuse the returned batch")
	}
	if again.Rows() != 0 || again.Width() != 2 || again.MemSize() != 0 {
		t.Fatalf("reused batch not reset: rows=%d width=%d mem=%d",
			again.Rows(), again.Width(), again.MemSize())
	}
	gets, hits := p.Stats()
	if gets != 2 || hits != 1 {
		t.Fatalf("pool stats gets=%d hits=%d, want 2/1", gets, hits)
	}
	p.Put(nil) // must be a no-op
}

func TestBatchScratchReuseAcrossDecodes(t *testing.T) {
	scratch := NewBatch(0)
	for round := 0; round < 3; round++ {
		recs := batch(32)
		got, err := DecodeBatch(EncodeBatch(recs, scratch), scratch)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sameRecords(t, got, recs)
	}
}

// FuzzDecodeBatch drives the columnar frame decoder with arbitrary
// bytes. Like FuzzDecodeRecords it guards every cross-node transfer
// and every spill/checkpoint frame: it must never panic or
// over-allocate on damaged input, and anything it accepts must survive
// a re-encode round trip.
func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch(richRecords(), nil))
	f.Add(EncodeBatch(nil, nil))
	f.Add(EncodeBatch(batch(5), nil))
	f.Add(EncodeBatch([]Record{{NewInt64(1)}, {NewInt64(1), Null}}, nil)) // row-wise
	full := EncodeBatch(batch(7), nil)
	f.Add(full[:len(full)/2])
	f.Add(full[:1])
	f.Add([]byte{batchFormatColumnar, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	pad := EncodeBatch([]Record{{Null, NewString(strings.Repeat("n", 40))}}, nil)
	f.Add(pad)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeBatch(data, nil)
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		again, err := DecodeBatch(EncodeBatch(recs, nil), nil)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d != %d", len(again), len(recs))
		}
		for i := range recs {
			if len(again[i]) != len(recs[i]) {
				t.Fatalf("record %d: field count %d != %d", i, len(again[i]), len(recs[i]))
			}
			for j := range recs[i] {
				if !again[i][j].Equal(recs[i][j]) && !sameWire(again[i][j], recs[i][j]) {
					t.Fatalf("record %d field %d: %v != %v", i, j, again[i][j], recs[i][j])
				}
			}
		}
	})
}

// benchHashRecords builds the record shape the hash path shuffles for
// an equi-join COUNT(*): three int64 columns — bucket id, join key,
// and the row id. ExchangeHash moves these rows verbatim, so this is
// the frame payload the COMBINE side of a hash join ingests.
func benchHashRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			NewInt64(int64(i) % 512),
			NewInt64(int64(i) % 997),
			NewInt64(int64(i)),
		}
	}
	return recs
}

// benchExtendedRecords builds the widest shape the shuffle carries:
// the extended [bucket_id, key, fields...] layout the PARTITION phase
// emits (here the interval-join shape — bucket id, interval key, then
// the row's id, vendor, and interval fields).
func benchExtendedRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		iv := interval.Interval{Start: int64(i), End: int64(i) + 300}
		recs[i] = Record{
			NewInt64(int64(i) % 512),
			NewInterval(iv),
			NewInt64(int64(i)),
			NewInt64(1 + int64(i)%2),
			NewInterval(iv),
		}
	}
	return recs
}

var codecArms = []struct {
	name string
	bs   int
}{{"batched", 1024}, {"record", 1}}

// frameSlices cuts recs into frame-sized windows.
func frameSlices(recs []Record, bs int) [][]Record {
	var out [][]Record
	for lo := 0; lo < len(recs); lo += bs {
		hi := lo + bs
		if hi > len(recs) {
			hi = len(recs)
		}
		out = append(out, recs[lo:hi])
	}
	return out
}

// BenchmarkCombineIngest measures the COMBINE-side frame ingest — the
// receive edge of the hash-path shuffle, where each arriving frame is
// decoded and its records materialized — at the default batch size
// against record-at-a-time framing (one row per frame, the
// WithBatchSize(1) baseline).
func BenchmarkCombineIngest(b *testing.B) {
	recs := benchHashRecords(60000)
	for _, arm := range codecArms {
		b.Run(arm.name, func(b *testing.B) {
			enc, dec := NewBatch(0), NewBatch(0)
			var frames [][]byte
			for _, fr := range frameSlices(recs, arm.bs) {
				frames = append(frames, EncodeBatch(fr, enc))
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				total := 0
				for _, f := range frames {
					out, err := DecodeBatch(f, dec)
					if err != nil {
						b.Fatal(err)
					}
					total += len(out)
				}
				if total != len(recs) {
					b.Fatal("row count mismatch")
				}
			}
		})
	}
}

// BenchmarkBatchCodec measures the full shuffle frame codec (send-side
// encode plus receive-side ingest), the cost transferFrame pays per
// cross-node hop.
func BenchmarkBatchCodec(b *testing.B) {
	recs := benchExtendedRecords(60000)
	for _, arm := range codecArms {
		b.Run(arm.name, func(b *testing.B) {
			enc, dec := NewBatch(0), NewBatch(0)
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				total := 0
				for _, fr := range frameSlices(recs, arm.bs) {
					out, err := DecodeBatch(EncodeBatch(fr, enc), dec)
					if err != nil {
						b.Fatal(err)
					}
					total += len(out)
				}
				if total != len(recs) {
					b.Fatal("row count mismatch")
				}
			}
		})
	}
}
