package types

import (
	"errors"
	"strings"
	"testing"

	"fudj/internal/wire"
)

// The shuffle layer relies on DecodeRecords rejecting damaged payloads
// so corrupted transfers can be detected and resent; these tests pin
// the corruption-detection behaviour.

func batch(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{NewInt64(int64(i)), NewString(strings.Repeat("x", 10))}
	}
	return recs
}

func TestDecodeRecordsRoundTrip(t *testing.T) {
	recs := batch(10)
	out, err := DecodeRecords(EncodeRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("decoded %d records, want 10", len(out))
	}
	for i, r := range out {
		if r[0].Int64() != int64(i) {
			t.Errorf("record %d: got %v", i, r[0])
		}
	}
}

func TestDecodeRecordsTruncated(t *testing.T) {
	buf := EncodeRecords(batch(10))
	// Truncation at every possible point must error, never panic or
	// silently succeed with fewer records.
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeRecords(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d bytes decoded successfully", cut, len(buf))
		}
	}
}

func TestDecodeRecordsAbsurdCount(t *testing.T) {
	// A corrupted header claiming ~2^63 records must be rejected before
	// any allocation is attempted.
	buf := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	_, err := DecodeRecords(buf)
	if err == nil {
		t.Fatal("absurd record count decoded successfully")
	}
	if !errors.Is(err, wire.ErrShortBuffer) {
		t.Errorf("want the bounded-count error (wire.ErrShortBuffer), got: %v", err)
	}
}

func TestDecodeRecordsFlippedByte(t *testing.T) {
	recs := batch(8)
	clean := EncodeRecords(recs)
	rejected := 0
	for i := range clean {
		buf := append([]byte(nil), clean...)
		buf[i] ^= 0xff
		if _, err := DecodeRecords(buf); err != nil {
			rejected++
		}
	}
	// Not every bit flip is detectable without checksums (a flipped
	// payload byte still decodes), but structural damage must be.
	if rejected == 0 {
		t.Error("no flipped-byte corruption was detected")
	}
}

func TestDecodeRecordsEmptyBatch(t *testing.T) {
	out, err := DecodeRecords(EncodeRecords(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("decoded %d records from empty batch", len(out))
	}
}
