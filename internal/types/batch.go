package types

import (
	"fmt"

	"fudj/internal/wire"
)

// Batch is a column-major container of records. The engine's hot path
// moves batches instead of one Record at a time: each column holds its
// scalar payloads in a typed slice, so a shuffle frame or a spill run
// encodes a column's values contiguously (no per-value kind byte) and a
// decoded batch materializes all of its records out of two arena
// allocations instead of two per record.
//
// A batch requires every row to have the same width (the engine's
// streams are uniform-schema; the row-wise wire fallback covers the
// degenerate case). Column layout is decided per column by the first
// value appended: scalar kinds get a typed vector, and reference kinds
// (polygon, linestring, list) or kind-mixed columns fall back to a
// generic []Value vector that round-trips through DecodeValue.
type Batch struct {
	cols []vector
	rows int
	mem  int64 // Record-currency footprint of the materialized rows

	tags []byte // column-tag scratch reused across DecodeBatch calls
}

// batchGenericTag marks a kind-mixed or reference-kind column in the
// columnar wire frame; uniform columns use their Kind byte directly.
const batchGenericTag = 0xFF

// vector is one column of a batch. Exactly one representation is live:
// the typed slices when kind is a scalar kind and generic is false, or
// vals otherwise. Bool and Int64 share i; UUID and Interval use i+j;
// Point uses f+f2; Rect uses f..f4. A Null column stores nothing but
// the row count.
type vector struct {
	kind    Kind
	generic bool
	set     bool // kind has been decided by a first append

	i, j          []int64
	f, f2, f3, f4 []float64
	s             []string
	vals          []Value
}

// NewBatch returns an empty batch of the given row width.
func NewBatch(width int) *Batch {
	return &Batch{cols: make([]vector, width)}
}

// Rows reports the number of rows in the batch.
func (b *Batch) Rows() int { return b.rows }

// Width reports the number of columns.
func (b *Batch) Width() int { return len(b.cols) }

// MemSize estimates the bytes of memory the batch's rows pin, in the
// same currency as Record.MemSize/RecordsMemSize so batch-granular
// budget accounting composes with the PR 2 machinery: materializing
// the batch with Records and summing RecordsMemSize gives this number.
func (b *Batch) MemSize() int64 { return b.mem }

// Reset truncates the batch to zero rows, retaining column capacity so
// a pooled batch reuses its vectors.
func (b *Batch) Reset(width int) {
	if cap(b.cols) < width {
		b.cols = make([]vector, width)
	}
	b.cols = b.cols[:width]
	for c := range b.cols {
		col := &b.cols[c]
		col.kind, col.generic, col.set = KindNull, false, false
		col.i, col.j = col.i[:0], col.j[:0]
		col.f, col.f2, col.f3, col.f4 = col.f[:0], col.f2[:0], col.f3[:0], col.f4[:0]
		col.s, col.vals = col.s[:0], col.vals[:0]
	}
	b.rows = 0
	b.mem = 0
}

// typedKind reports whether k gets a typed vector (reference kinds and
// mixed columns use the generic representation).
func typedKind(k Kind) bool {
	switch k {
	case KindNull, KindBool, KindInt64, KindFloat64, KindString,
		KindUUID, KindPoint, KindRect, KindInterval:
		return true
	}
	return false
}

// appendValue appends v to column c, migrating the column to the
// generic representation on the first kind mismatch.
func (b *Batch) appendValue(c int, v Value) {
	col := &b.cols[c]
	if !col.set {
		col.set = true
		col.kind = v.kind
		col.generic = !typedKind(v.kind)
	} else if !col.generic && v.kind != col.kind {
		b.migrateGeneric(c)
	}
	if col.generic {
		col.vals = append(col.vals, v)
		return
	}
	switch col.kind {
	case KindNull:
	case KindBool, KindInt64:
		col.i = append(col.i, v.i)
	case KindFloat64:
		col.f = append(col.f, v.f)
	case KindString:
		col.s = append(col.s, v.s)
	case KindUUID, KindInterval:
		col.i = append(col.i, v.i)
		col.j = append(col.j, v.j)
	case KindPoint:
		col.f = append(col.f, v.f)
		col.f2 = append(col.f2, v.f2)
	case KindRect:
		col.f = append(col.f, v.f)
		col.f2 = append(col.f2, v.f2)
		col.f3 = append(col.f3, v.f3)
		col.f4 = append(col.f4, v.f4)
	}
}

// migrateGeneric rewrites column c from its typed representation to the
// generic one, preserving existing rows.
func (b *Batch) migrateGeneric(c int) {
	col := &b.cols[c]
	n := b.rows
	vals := col.vals
	if cap(vals) < n {
		vals = make([]Value, 0, n+1)
	}
	for row := 0; row < n; row++ {
		vals = append(vals, col.value(row))
	}
	col.vals = vals
	col.generic = true
	col.i, col.j = nil, nil
	col.f, col.f2, col.f3, col.f4 = nil, nil, nil, nil
	col.s = nil
}

// value reconstructs the Value at row for a column; no allocation for
// scalar kinds.
func (col *vector) value(row int) Value {
	if col.generic {
		return col.vals[row]
	}
	switch col.kind {
	case KindNull:
		return Null
	case KindBool, KindInt64:
		return Value{kind: col.kind, i: col.i[row]}
	case KindFloat64:
		return Value{kind: KindFloat64, f: col.f[row]}
	case KindString:
		return Value{kind: KindString, s: col.s[row]}
	case KindUUID, KindInterval:
		return Value{kind: col.kind, i: col.i[row], j: col.j[row]}
	case KindPoint:
		return Value{kind: KindPoint, f: col.f[row], f2: col.f2[row]}
	case KindRect:
		return Value{kind: KindRect, f: col.f[row], f2: col.f2[row], f3: col.f3[row], f4: col.f4[row]}
	}
	return Null
}

// AppendRecord appends one record as a new row. The record's width must
// match the batch's; width mismatches indicate a planner bug and panic.
func (b *Batch) AppendRecord(r Record) {
	if len(r) != len(b.cols) {
		panic(fmt.Sprintf("types: appending a %d-wide record to a %d-wide batch", len(r), len(b.cols)))
	}
	for c, v := range r {
		b.appendValue(c, v)
	}
	b.rows++
	b.mem += r.MemSize()
}

// AppendFrom appends row `row` of src as a new row of b. Both batches
// must have the same width.
func (b *Batch) AppendFrom(src *Batch, row int) {
	if len(src.cols) != len(b.cols) {
		panic(fmt.Sprintf("types: appending from a %d-wide batch to a %d-wide batch", len(src.cols), len(b.cols)))
	}
	var rowMem int64 = sliceHeader
	for c := range src.cols {
		v := src.cols[c].value(row)
		b.appendValue(c, v)
		rowMem += v.MemSize()
	}
	b.rows++
	b.mem += rowMem
}

// Value returns the value at (row, col) without materializing the row.
func (b *Batch) Value(row, col int) Value { return b.cols[col].value(row) }

// Record materializes one row as a freshly allocated Record.
func (b *Batch) Record(row int) Record {
	r := make(Record, len(b.cols))
	for c := range b.cols {
		r[c] = b.cols[c].value(row)
	}
	return r
}

// transposeBlockRows sizes the row blocks of the Records transpose: one
// block of fat Value cells (rows × width × 80B) stays L1-resident
// across all of a batch's column passes.
const transposeBlockRows = 64

// Records materializes every row. All rows share one backing []Value
// arena and one []Record header arena: two allocations for the whole
// batch rather than one per record, which is where the decoded-shuffle
// allocation win comes from. The fill is a cache-blocked column-major
// transpose writing only each column's live fields — the arena is
// already zeroed, so a fat 9-word Value copy per cell is never paid.
func (b *Batch) Records() []Record {
	if b.rows == 0 {
		return nil
	}
	w := len(b.cols)
	arena := make([]Value, b.rows*w)
	recs := make([]Record, b.rows)
	for row := 0; row < b.rows; row++ {
		recs[row] = arena[row*w : (row+1)*w : (row+1)*w]
	}
	for base := 0; base < b.rows; base += transposeBlockRows {
		hi := base + transposeBlockRows
		if hi > b.rows {
			hi = b.rows
		}
		for c := range b.cols {
			b.cols[c].fillArena(arena, w, c, base, hi)
		}
	}
	return recs
}

// fillArena writes rows [base, hi) of the column into the row-major
// arena, touching only the fields its kind uses.
func (col *vector) fillArena(arena []Value, w, c, base, hi int) {
	if col.generic {
		for row := base; row < hi; row++ {
			arena[row*w+c] = col.vals[row]
		}
		return
	}
	switch col.kind {
	case KindNull:
		// The arena's zero Value is already Null.
	case KindBool, KindInt64:
		for row := base; row < hi; row++ {
			cell := &arena[row*w+c]
			cell.kind = col.kind
			cell.i = col.i[row]
		}
	case KindFloat64:
		for row := base; row < hi; row++ {
			cell := &arena[row*w+c]
			cell.kind = KindFloat64
			cell.f = col.f[row]
		}
	case KindString:
		for row := base; row < hi; row++ {
			cell := &arena[row*w+c]
			cell.kind = KindString
			cell.s = col.s[row]
		}
	case KindUUID, KindInterval:
		for row := base; row < hi; row++ {
			cell := &arena[row*w+c]
			cell.kind = col.kind
			cell.i = col.i[row]
			cell.j = col.j[row]
		}
	case KindPoint:
		for row := base; row < hi; row++ {
			cell := &arena[row*w+c]
			cell.kind = KindPoint
			cell.f = col.f[row]
			cell.f2 = col.f2[row]
		}
	case KindRect:
		for row := base; row < hi; row++ {
			cell := &arena[row*w+c]
			cell.kind = KindRect
			cell.f = col.f[row]
			cell.f2 = col.f2[row]
			cell.f3 = col.f3[row]
			cell.f4 = col.f4[row]
		}
	}
}

// BatchFromRecords builds a batch from uniform-width records. It
// reports false (and builds nothing) when the rows are not all the
// same width, in which case callers fall back to row-wise encoding.
func BatchFromRecords(b *Batch, recs []Record) bool {
	if len(recs) == 0 {
		b.Reset(0)
		return true
	}
	w := len(recs[0])
	if w == 0 {
		// Zero-width rows carry no payload bytes, so a columnar frame
		// could not bound its row count by the remaining input; the
		// row-wise fallback keeps the count bounded by per-record
		// header bytes instead.
		return false
	}
	for _, r := range recs[1:] {
		if len(r) != w {
			return false
		}
	}
	b.Reset(w)
	for _, r := range recs {
		b.AppendRecord(r)
	}
	return true
}

// Columnar batch wire format. A frame is:
//
//	formatByte (batchFormatColumnar | batchFormatRowWise)
//
// Columnar payload:
//
//	uvarint(width)          — bounded by UvarintCount(1): every column
//	                          encodes at least its tag byte
//	column tags [width]     — one byte per column: the Kind for a
//	                          uniform typed column, batchGenericTag for
//	                          a generic one
//	uvarint(rows)           — every column encodes at least one byte
//	                          per row (Null columns pad one zero byte),
//	                          so rows is bounded by UvarintCount(1);
//	                          width == 0 requires rows == 0
//	column payloads [width] — per column, `rows` values with no
//	                          per-value kind bytes (generic columns use
//	                          full DecodeValue framing per value)
//
// Row-wise payload: the legacy EncodeRecords bytes, used only for the
// degenerate ragged-width case.
const (
	batchFormatColumnar = 0x01
	batchFormatRowWise  = 0x02
)

// MarshalWire encodes the batch as one columnar frame.
func (b *Batch) MarshalWire(e *wire.Encoder) {
	e.Byte(batchFormatColumnar)
	e.Uvarint(uint64(len(b.cols)))
	for c := range b.cols {
		col := &b.cols[c]
		if col.generic {
			e.Byte(batchGenericTag)
		} else {
			e.Byte(byte(col.kind))
		}
	}
	e.Uvarint(uint64(b.rows))
	for c := range b.cols {
		col := &b.cols[c]
		if col.generic {
			for _, v := range col.vals {
				v.MarshalWire(e)
			}
			continue
		}
		switch col.kind {
		case KindNull:
			// One pad byte per row keeps every column at >=1 byte/row,
			// which is what lets the decoder bound `rows` with
			// UvarintCount(1) before allocating vectors.
			for row := 0; row < b.rows; row++ {
				e.Byte(0)
			}
		case KindBool, KindInt64:
			for _, v := range col.i {
				e.Varint(v)
			}
		case KindFloat64:
			for _, v := range col.f {
				e.Float64(v)
			}
		case KindString:
			for _, v := range col.s {
				e.String(v)
			}
		case KindUUID, KindInterval:
			for row := 0; row < b.rows; row++ {
				e.Varint(col.i[row])
				e.Varint(col.j[row])
			}
		case KindPoint:
			for row := 0; row < b.rows; row++ {
				e.Float64(col.f[row])
				e.Float64(col.f2[row])
			}
		case KindRect:
			for row := 0; row < b.rows; row++ {
				e.Float64(col.f[row])
				e.Float64(col.f2[row])
				e.Float64(col.f3[row])
				e.Float64(col.f4[row])
			}
		}
	}
}

// UnmarshalWire decodes one batch frame (either format) into b,
// replacing its contents but reusing vector capacity.
func (b *Batch) UnmarshalWire(d *wire.Decoder) error {
	format, err := d.Byte()
	if err != nil {
		return fmt.Errorf("types: batch format: %w", err)
	}
	switch format {
	case batchFormatColumnar:
		return b.decodeColumnar(d)
	case batchFormatRowWise:
		n, err := d.UvarintCount(1)
		if err != nil {
			return fmt.Errorf("types: batch row count: %w", err)
		}
		b.Reset(0)
		for i := 0; i < n; i++ {
			r, err := DecodeRecord(d)
			if err != nil {
				return err
			}
			if i == 0 {
				b.Reset(len(r))
			}
			if len(r) != len(b.cols) {
				return fmt.Errorf("types: row-wise batch row %d is %d wide, want %d", i, len(r), len(b.cols))
			}
			b.AppendRecord(r)
		}
		return nil
	}
	return fmt.Errorf("types: unknown batch format 0x%02x", format)
}

func (b *Batch) decodeColumnar(d *wire.Decoder) error {
	// Every column contributes at least its tag byte, so a corrupted
	// width cannot exceed the remaining input.
	width, err := d.UvarintCount(1)
	if err != nil {
		return fmt.Errorf("types: batch width: %w", err)
	}
	b.Reset(width)
	for c := 0; c < width; c++ {
		tag, err := d.Byte()
		if err != nil {
			return fmt.Errorf("types: batch column tag: %w", err)
		}
		col := &b.cols[c]
		col.set = true
		if tag == batchGenericTag {
			col.kind, col.generic = KindNull, true
			continue
		}
		k := Kind(tag)
		if int(k) >= len(kindNames) || !typedKind(k) {
			return fmt.Errorf("types: invalid batch column tag 0x%02x", tag)
		}
		col.kind, col.generic = k, false
	}
	// Every column encodes at least one byte per row (Null columns are
	// padded), so the row count is bounded before vectors are sized.
	rows, err := d.UvarintCount(1)
	if err != nil {
		return fmt.Errorf("types: batch rows: %w", err)
	}
	if width == 0 {
		if rows != 0 {
			return fmt.Errorf("types: batch claims %d rows with no columns", rows)
		}
		return nil
	}
	for c := 0; c < width; c++ {
		if err := b.decodeColumn(d, c, rows); err != nil {
			return err
		}
	}
	b.rows = rows
	b.mem += int64(rows) * sliceHeader
	return nil
}

// decodeColumn reads one column's payload. rows is already bounded by
// the caller's UvarintCount, so the vector allocations here cannot be
// inflated past the frame size by a corrupted prefix.
func (b *Batch) decodeColumn(d *wire.Decoder, c, rows int) error {
	col := &b.cols[c]
	if col.generic {
		if cap(col.vals) < rows {
			col.vals = make([]Value, 0, rows)
		}
		for row := 0; row < rows; row++ {
			v, err := DecodeValue(d)
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			col.vals = append(col.vals, v)
			b.mem += v.MemSize()
		}
		return nil
	}
	b.mem += int64(rows) * valueBase
	switch col.kind {
	case KindNull:
		for row := 0; row < rows; row++ {
			if _, err := d.Byte(); err != nil {
				return fmt.Errorf("types: batch null column %d: %w", c, err)
			}
		}
	case KindBool, KindInt64:
		col.i = growInts(col.i, rows)
		for row := 0; row < rows; row++ {
			v, err := d.Varint()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			col.i = append(col.i, v)
		}
	case KindFloat64:
		col.f = growFloats(col.f, rows)
		for row := 0; row < rows; row++ {
			v, err := d.Float64()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			col.f = append(col.f, v)
		}
	case KindString:
		if cap(col.s) < rows {
			col.s = make([]string, 0, rows)
		}
		for row := 0; row < rows; row++ {
			v, err := d.String()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			col.s = append(col.s, v)
			b.mem += int64(len(v))
		}
	case KindUUID, KindInterval:
		col.i = growInts(col.i, rows)
		col.j = growInts(col.j, rows)
		for row := 0; row < rows; row++ {
			i, err := d.Varint()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			j, err := d.Varint()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			col.i = append(col.i, i)
			col.j = append(col.j, j)
		}
	case KindPoint:
		col.f = growFloats(col.f, rows)
		col.f2 = growFloats(col.f2, rows)
		for row := 0; row < rows; row++ {
			x, err := d.Float64()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			y, err := d.Float64()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			col.f = append(col.f, x)
			col.f2 = append(col.f2, y)
		}
	case KindRect:
		col.f = growFloats(col.f, rows)
		col.f2 = growFloats(col.f2, rows)
		col.f3 = growFloats(col.f3, rows)
		col.f4 = growFloats(col.f4, rows)
		for row := 0; row < rows; row++ {
			var vs [4]float64
			for i := range vs {
				v, err := d.Float64()
				if err != nil {
					return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
				}
				vs[i] = v
			}
			col.f = append(col.f, vs[0])
			col.f2 = append(col.f2, vs[1])
			col.f3 = append(col.f3, vs[2])
			col.f4 = append(col.f4, vs[3])
		}
	}
	return nil
}

func growInts(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, 0, n)
	}
	return s[:0]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, 0, n)
	}
	return s[:0]
}

// EncodeBatch encodes a record slice as one batch frame: columnar when
// the rows are uniform width (always, for the engine's streams), the
// row-wise fallback otherwise. scratch is accepted for symmetry with
// DecodeBatch but unused: encoding reads columns straight out of the
// records in one pass, with no staging copy.
func EncodeBatch(recs []Record, scratch *Batch) []byte {
	e := wire.NewEncoder(len(recs)*24 + 16)
	EncodeBatchInto(e, recs, scratch)
	return e.Bytes()
}

// EncodeBatchInto appends one batch frame for recs to e. See EncodeBatch.
func EncodeBatchInto(e *wire.Encoder, recs []Record, _ *Batch) {
	if len(recs) == 0 {
		e.Byte(batchFormatColumnar)
		e.Uvarint(0) // width
		e.Uvarint(0) // rows
		return
	}
	w := len(recs[0])
	if w == 0 {
		// Zero-width rows carry no payload bytes, so a columnar frame
		// could not bound its row count by the remaining input; the
		// row-wise fallback keeps the count bounded by per-record
		// header bytes instead.
		encodeRowWise(e, recs)
		return
	}
	for _, r := range recs[1:] {
		if len(r) != w {
			encodeRowWise(e, recs)
			return
		}
	}
	e.Byte(batchFormatColumnar)
	e.Uvarint(uint64(w))
	// Column tags: the uniform scalar Kind, or the generic tag for
	// reference-kind or kind-mixed columns. The kind scan is a byte
	// compare per value; payloads are emitted straight from the record
	// values below, so the whole encode is one staging-free pass.
	tags := make([]byte, w)
	for c := 0; c < w; c++ {
		k := recs[0][c].kind
		generic := !typedKind(k)
		if !generic {
			for _, r := range recs[1:] {
				if r[c].kind != k {
					generic = true
					break
				}
			}
		}
		if generic {
			tags[c] = batchGenericTag
		} else {
			tags[c] = byte(k)
		}
		e.Byte(tags[c])
	}
	e.Uvarint(uint64(len(recs)))
	for c := 0; c < w; c++ {
		encodeColumn(e, recs, c, tags[c])
	}
}

// encodeColumn emits column c of a uniform-width record slice using the
// representation its already-emitted tag promised.
func encodeColumn(e *wire.Encoder, recs []Record, c int, tag byte) {
	if tag == batchGenericTag {
		for _, r := range recs {
			r[c].MarshalWire(e)
		}
		return
	}
	switch Kind(tag) {
	case KindNull:
		// One pad byte per row keeps every column at >=1 byte/row,
		// which is what lets the decoder bound `rows` with
		// UvarintCount(1) before allocating vectors.
		for range recs {
			e.Byte(0)
		}
	case KindBool, KindInt64:
		for _, r := range recs {
			e.Varint(r[c].i)
		}
	case KindFloat64:
		for _, r := range recs {
			e.Float64(r[c].f)
		}
	case KindString:
		for _, r := range recs {
			e.String(r[c].s)
		}
	case KindUUID, KindInterval:
		for _, r := range recs {
			e.Varint(r[c].i)
			e.Varint(r[c].j)
		}
	case KindPoint:
		for _, r := range recs {
			e.Float64(r[c].f)
			e.Float64(r[c].f2)
		}
	case KindRect:
		for _, r := range recs {
			e.Float64(r[c].f)
			e.Float64(r[c].f2)
			e.Float64(r[c].f3)
			e.Float64(r[c].f4)
		}
	}
}

// encodeRowWise emits the ragged/zero-width fallback frame.
func encodeRowWise(e *wire.Encoder, recs []Record) {
	e.Byte(batchFormatRowWise)
	e.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		r.MarshalWire(e)
	}
}

// DecodeBatch decodes one batch frame and materializes its records.
// The columnar path decodes straight into one []Value arena and one
// []Record header arena — two allocations for the whole frame, no
// intermediate vector staging. scratch, when non-nil, carries small
// reusable buffers across decodes. Unlike Batch.UnmarshalWire, this
// handles ragged row-wise frames, which a column-major Batch cannot
// represent.
func DecodeBatch(buf []byte, scratch *Batch) ([]Record, error) {
	if scratch == nil {
		scratch = NewBatch(0)
	}
	d := wire.NewDecoder(buf)
	format, err := d.Byte()
	if err != nil {
		return nil, fmt.Errorf("types: batch format: %w", err)
	}
	switch format {
	case batchFormatColumnar:
		return decodeColumnarRecords(d, scratch)
	case batchFormatRowWise:
		return decodeRowWise(d)
	}
	return nil, fmt.Errorf("types: unknown batch format 0x%02x", format)
}

// stagedDecodeMinRows is the frame size at which columnar decode
// switches from filling the row-major record arena directly (best for
// small frames: no staging pass) to staging typed column vectors and
// transposing once (best for large frames: sequential appends, then a
// cache-friendly transpose out of compact vectors).
const stagedDecodeMinRows = 64

// decodeColumnarRecords reads a columnar payload directly into record
// form. Allocation stays bounded by the frame: width and rows both come
// through UvarintCount — rows at a floor of one payload byte per row
// per column — so the rows×width arena never exceeds the bytes actually
// present in a well-formed (or corrupted) frame.
func decodeColumnarRecords(d *wire.Decoder, scratch *Batch) ([]Record, error) {
	width, err := d.UvarintCount(1)
	if err != nil {
		return nil, fmt.Errorf("types: batch width: %w", err)
	}
	tags := scratch.tags
	if cap(tags) < width {
		tags = make([]byte, width)
	}
	tags = tags[:width]
	scratch.tags = tags
	for c := 0; c < width; c++ {
		tag, err := d.Byte()
		if err != nil {
			return nil, fmt.Errorf("types: batch column tag: %w", err)
		}
		if tag != batchGenericTag {
			k := Kind(tag)
			if int(k) >= len(kindNames) || !typedKind(k) {
				return nil, fmt.Errorf("types: invalid batch column tag 0x%02x", tag)
			}
		}
		tags[c] = tag
	}
	rowFloor := width
	if rowFloor < 1 {
		rowFloor = 1
	}
	rows, err := d.UvarintCount(rowFloor)
	if err != nil {
		return nil, fmt.Errorf("types: batch rows: %w", err)
	}
	if width == 0 {
		if rows != 0 {
			return nil, fmt.Errorf("types: batch claims %d rows with no columns", rows)
		}
		return nil, nil
	}
	if rows == 0 {
		return nil, nil
	}
	if rows >= stagedDecodeMinRows {
		// Large frames: decode each column into its compact typed
		// vector (sequential appends), then transpose once via
		// Records(). The staging pass beats filling the row-major
		// arena directly, whose width×80-byte write stride thrashes
		// the cache at batch-sized row counts.
		scratch.Reset(width)
		for c, tag := range tags {
			col := &scratch.cols[c]
			col.set = true
			if tag == batchGenericTag {
				col.kind, col.generic = KindNull, true
			} else {
				col.kind, col.generic = Kind(tag), false
			}
		}
		for c := range tags {
			if err := scratch.decodeColumn(d, c, rows); err != nil {
				return nil, err
			}
		}
		scratch.rows = rows
		return scratch.Records(), nil
	}
	arena := make([]Value, rows*width)
	recs := make([]Record, rows)
	for i := range recs {
		recs[i] = arena[i*width : (i+1)*width : (i+1)*width]
	}
	for c, tag := range tags {
		if err := decodeColumnInto(d, arena, c, width, rows, tag); err != nil {
			return nil, err
		}
	}
	return recs, nil
}

// decodeColumnInto fills column c of the row-major arena from d.
func decodeColumnInto(d *wire.Decoder, arena []Value, c, width, rows int, tag byte) error {
	if tag == batchGenericTag {
		for row := 0; row < rows; row++ {
			v, err := DecodeValue(d)
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			arena[row*width+c] = v
		}
		return nil
	}
	switch k := Kind(tag); k {
	case KindNull:
		for row := 0; row < rows; row++ {
			if _, err := d.Byte(); err != nil {
				return fmt.Errorf("types: batch null column %d: %w", c, err)
			}
			// The arena's zero Value is already Null.
		}
	case KindBool, KindInt64:
		for row := 0; row < rows; row++ {
			v, err := d.Varint()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			arena[row*width+c] = Value{kind: k, i: v}
		}
	case KindFloat64:
		for row := 0; row < rows; row++ {
			v, err := d.Float64()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			arena[row*width+c] = Value{kind: KindFloat64, f: v}
		}
	case KindString:
		for row := 0; row < rows; row++ {
			v, err := d.String()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			arena[row*width+c] = Value{kind: KindString, s: v}
		}
	case KindUUID, KindInterval:
		for row := 0; row < rows; row++ {
			i, err := d.Varint()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			j, err := d.Varint()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			arena[row*width+c] = Value{kind: k, i: i, j: j}
		}
	case KindPoint:
		for row := 0; row < rows; row++ {
			x, err := d.Float64()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			y, err := d.Float64()
			if err != nil {
				return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
			}
			arena[row*width+c] = Value{kind: KindPoint, f: x, f2: y}
		}
	case KindRect:
		for row := 0; row < rows; row++ {
			var vs [4]float64
			for i := range vs {
				v, err := d.Float64()
				if err != nil {
					return fmt.Errorf("types: batch column %d row %d: %w", c, row, err)
				}
				vs[i] = v
			}
			arena[row*width+c] = Value{kind: KindRect, f: vs[0], f2: vs[1], f3: vs[2], f4: vs[3]}
		}
	}
	return nil
}

// decodeRowWise reads a row-wise batch payload (possibly ragged).
func decodeRowWise(d *wire.Decoder) ([]Record, error) {
	n, err := d.UvarintCount(1)
	if err != nil {
		return nil, fmt.Errorf("types: batch row count: %w", err)
	}
	out := make([]Record, n)
	for i := range out {
		if out[i], err = DecodeRecord(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}
