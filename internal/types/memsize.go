package types

import "unsafe"

// Memory accounting: the engine's memory-bounded execution needs to
// know roughly how many bytes of RAM a record pins while it sits in a
// shuffle inbox or a COMBINE hash build. The estimate is the tagged
// union's fixed footprint plus any heap payload it references; it does
// not try to model allocator rounding or sharing, only to give the
// budget enforcement a consistent, monotone currency.

// valueBase is the fixed in-memory footprint of one Value struct.
const valueBase = int64(unsafe.Sizeof(Value{}))

// sliceHeader is the footprint of a slice header ([]Value / Record).
const sliceHeader = int64(unsafe.Sizeof([]Value(nil)))

// pointSize is the footprint of one geo.Point inside a ring/polyline.
const pointSize = int64(2 * unsafe.Sizeof(float64(0)))

// MemSize estimates the bytes of memory the value pins: the inline
// union plus referenced heap payloads (string bytes, polygon rings,
// list elements).
func (v Value) MemSize() int64 {
	size := valueBase
	switch v.kind {
	case KindString:
		size += int64(len(v.s))
	case KindPolygon:
		if v.poly != nil {
			size += sliceHeader + int64(len(v.poly.Ring))*pointSize
		}
	case KindLineString:
		if v.line != nil {
			size += sliceHeader + int64(len(v.line.Points))*pointSize
		}
	case KindList:
		size += sliceHeader
		for _, e := range v.list {
			size += e.MemSize()
		}
	}
	return size
}

// MemSize estimates the bytes of memory the record pins: the slice
// header plus every value's footprint.
func (r Record) MemSize() int64 {
	size := sliceHeader
	for _, v := range r {
		size += v.MemSize()
	}
	return size
}

// RecordsMemSize estimates the resident footprint of a record batch.
func RecordsMemSize(recs []Record) int64 {
	var size int64
	for _, r := range recs {
		size += r.MemSize()
	}
	return size
}
