package types

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/wire"
)

func sampleValues() []Value {
	return []Value{
		Null,
		NewBool(true),
		NewBool(false),
		NewInt64(-42),
		NewInt64(1 << 40),
		NewFloat64(3.25),
		NewString(""),
		NewString("hello"),
		NewUUID(7, 9),
		NewPoint(geo.Point{X: 1, Y: 2}),
		NewRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 5}),
		NewPolygon(geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})),
		NewInterval(interval.Interval{Start: 10, End: 20}),
		NewList([]Value{NewInt64(1), NewString("x")}),
	}
}

func TestValueAccessors(t *testing.T) {
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool accessor")
	}
	if NewInt64(5).Int64() != 5 {
		t.Error("Int64 accessor")
	}
	if NewFloat64(2.5).Float64() != 2.5 {
		t.Error("Float64 accessor")
	}
	if NewString("ab").Str() != "ab" {
		t.Error("Str accessor")
	}
	hi, lo := NewUUID(3, 4).UUID()
	if hi != 3 || lo != 4 {
		t.Error("UUID accessor")
	}
	if NewPoint(geo.Point{X: 1, Y: 2}).Point() != (geo.Point{X: 1, Y: 2}) {
		t.Error("Point accessor")
	}
	iv := NewInterval(interval.Interval{Start: 1, End: 2}).Interval()
	if iv.Start != 1 || iv.End != 2 {
		t.Error("Interval accessor")
	}
	if len(NewList([]Value{Null}).List()) != 1 {
		t.Error("List accessor")
	}
}

func TestAccessorPanicsOnKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int64 on string: want panic")
		}
	}()
	_ = NewString("x").Int64()
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt64(3).AsFloat(); !ok || f != 3 {
		t.Error("AsFloat int")
	}
	if f, ok := NewFloat64(1.5).AsFloat(); !ok || f != 1.5 {
		t.Error("AsFloat float")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("AsFloat string should fail")
	}
}

func TestMBR(t *testing.T) {
	r, ok := NewPoint(geo.Point{X: 2, Y: 3}).MBR()
	if !ok || r != geo.RectFromPoint(geo.Point{X: 2, Y: 3}) {
		t.Error("point MBR")
	}
	want := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	r, ok = NewRect(want).MBR()
	if !ok || r != want {
		t.Error("rect MBR")
	}
	if _, ok = NewInt64(1).MBR(); ok {
		t.Error("int MBR should fail")
	}
}

func TestEqualAndHash(t *testing.T) {
	vals := sampleValues()
	for i, a := range vals {
		for j, b := range vals {
			if (i == j) != a.Equal(b) {
				t.Errorf("Equal(%v, %v) = %v, want %v", a, b, a.Equal(b), i == j)
			}
			if i == j && a.Hash() != b.Hash() {
				t.Errorf("equal values hash differently: %v", a)
			}
		}
	}
}

func TestCompare(t *testing.T) {
	if NewInt64(1).Compare(NewInt64(2)) != -1 || NewInt64(2).Compare(NewInt64(1)) != 1 {
		t.Error("int compare")
	}
	if NewString("a").Compare(NewString("b")) != -1 {
		t.Error("string compare")
	}
	if NewInt64(1).Compare(NewString("a")) == 0 {
		t.Error("cross-kind compare should not be 0")
	}
	for _, v := range sampleValues() {
		if v.Compare(v) != 0 {
			t.Errorf("Compare(%v, self) != 0", v)
		}
	}
}

func TestValueWireRoundTrip(t *testing.T) {
	for _, v := range sampleValues() {
		e := wire.NewEncoder(0)
		v.MarshalWire(e)
		got, err := DecodeValue(wire.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestDecodeValueBadKind(t *testing.T) {
	if _, err := DecodeValue(wire.NewDecoder([]byte{0xFF})); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := DecodeValue(wire.NewDecoder(nil)); err == nil {
		t.Error("empty buffer should error")
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema(Field{"id", KindInt64}, Field{"name", KindString})
	if s.Len() != 2 {
		t.Error("Len")
	}
	if s.Index("name") != 1 || s.Index("missing") != -1 {
		t.Error("Index")
	}
	if s.MustIndex("id") != 0 {
		t.Error("MustIndex")
	}
	p := s.Project([]int{1})
	if p.Len() != 1 || p.Fields[0].Name != "name" {
		t.Error("Project")
	}
	if got := s.String(); got != "(id:int64, name:string)" {
		t.Errorf("String = %q", got)
	}
}

func TestSchemaMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex missing: want panic")
		}
	}()
	NewSchema(Field{"a", KindInt64}).MustIndex("b")
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate field: want panic")
		}
	}()
	NewSchema(Field{"a", KindInt64}, Field{"a", KindString})
}

func TestSchemaConcat(t *testing.T) {
	a := NewSchema(Field{"id", KindInt64}, Field{"v", KindString})
	b := NewSchema(Field{"id", KindInt64}, Field{"w", KindFloat64})
	c := a.Concat(b)
	wantNames := []string{"id", "v", "r_id", "w"}
	if c.Len() != 4 {
		t.Fatalf("Concat Len = %d", c.Len())
	}
	for i, n := range wantNames {
		if c.Fields[i].Name != n {
			t.Errorf("field %d = %q, want %q", i, c.Fields[i].Name, n)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{NewInt64(1), NewString("a"), NewPoint(geo.Point{X: 1, Y: 2})},
		{NewInt64(2), Null, NewBool(true)},
		{},
	}
	buf := EncodeRecords(recs)
	got, err := DecodeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if len(got[i]) != len(recs[i]) {
			t.Fatalf("record %d length mismatch", i)
		}
		for j := range recs[i] {
			if !got[i][j].Equal(recs[i][j]) {
				t.Errorf("record %d field %d: %v != %v", i, j, got[i][j], recs[i][j])
			}
		}
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{NewInt64(1)}
	c := r.Clone()
	c[0] = NewInt64(2)
	if r[0].Int64() != 1 {
		t.Error("Clone aliases original")
	}
}

// Property: random int/float/string records survive a wire round trip,
// and hashing is consistent with equality.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		r := Record{NewInt64(i), NewFloat64(fl), NewString(s), NewBool(b)}
		got, err := DecodeRecords(EncodeRecords([]Record{r}))
		if err != nil || len(got) != 1 {
			return false
		}
		for j := range r {
			if !got[0][j].Equal(r[j]) {
				return false
			}
			if got[0][j].Hash() != r[j].Hash() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestQuickCompareConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt64(a), NewInt64(b)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		return (va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
