package types

import (
	"fmt"

	"fudj/internal/geo"
)

// Geometry extracts the spatial payload of a value as a geo.Geometry,
// reporting whether the value is spatial.
func (v Value) Geometry() (geo.Geometry, bool) {
	switch v.kind {
	case KindPoint:
		return v.Point(), true
	case KindRect:
		return v.Rect(), true
	case KindPolygon:
		return v.poly, true
	case KindLineString:
		return v.line, true
	}
	return nil, false
}

// Native converts an engine value to the plain Go value the FUDJ
// translation layer (Fig. 7) hands to join libraries:
//
//	int64 → int64, float64 → float64, string → string, bool → bool,
//	point/rect/polygon → geo.Geometry, interval → interval.Interval,
//	uuid → [2]int64, list of strings → []string, other lists → []any.
func (v Value) Native() any {
	switch v.kind {
	case KindNull:
		return nil
	case KindBool:
		return v.Bool()
	case KindInt64:
		return v.i
	case KindFloat64:
		return v.f
	case KindString:
		return v.s
	case KindUUID:
		return [2]int64{v.j, v.i}
	case KindPoint:
		return v.Point()
	case KindRect:
		return v.Rect()
	case KindPolygon:
		return v.poly
	case KindLineString:
		return v.line
	case KindInterval:
		return v.Interval()
	case KindList:
		if allStrings(v.list) {
			out := make([]string, len(v.list))
			for i, e := range v.list {
				out[i] = e.Str()
			}
			return out
		}
		out := make([]any, len(v.list))
		for i, e := range v.list {
			out[i] = e.Native()
		}
		return out
	}
	panic(fmt.Sprintf("types: no native form for %v", v.kind))
}

func allStrings(vs []Value) bool {
	for _, e := range vs {
		if e.Kind() != KindString {
			return false
		}
	}
	return len(vs) > 0
}

// GeometryNative returns the geometry behind a native value produced by
// Native, used by spatial join libraries to accept any spatial key.
func GeometryNative(key any) (geo.Geometry, bool) {
	g, ok := key.(geo.Geometry)
	return g, ok
}
