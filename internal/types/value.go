// Package types implements the engine's value system: the dynamic
// values records are made of, schemas, and record encoding. It plays
// the role of AsterixDB's internal data model ("AInt64" etc. in the
// paper's Fig. 7); the FUDJ translation layer in internal/core converts
// between these values and the plain Go types user join libraries see.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/wire"
)

// Kind enumerates the dynamic types the engine understands.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt64
	KindFloat64
	KindString
	KindUUID
	KindPoint
	KindRect
	KindPolygon
	KindInterval
	KindList
	KindLineString
)

var kindNames = [...]string{
	KindNull: "null", KindBool: "bool", KindInt64: "int64",
	KindFloat64: "float64", KindString: "string", KindUUID: "uuid",
	KindPoint: "point", KindRect: "rect", KindPolygon: "polygon",
	KindInterval: "interval", KindList: "list", KindLineString: "linestring",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a dynamically typed engine value. It is a small tagged
// union: scalar payloads live inline, reference payloads (string,
// polygon, list) live behind the ptr fields. The zero Value is null.
type Value struct {
	kind Kind
	i    int64   // bool/int64/uuid-lo/interval-start
	j    int64   // uuid-hi/interval-end
	f    float64 // float64 / point.X / rect fields via list? no: points use f,f2
	f2   float64
	f3   float64
	f4   float64
	s    string
	poly *geo.Polygon
	line *geo.LineString
	list []Value
}

// Null is the null value.
var Null = Value{}

// NewBool wraps a bool.
func NewBool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// NewInt64 wraps an int64.
func NewInt64(i int64) Value { return Value{kind: KindInt64, i: i} }

// NewFloat64 wraps a float64.
func NewFloat64(f float64) Value { return Value{kind: KindFloat64, f: f} }

// NewString wraps a string.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewUUID wraps a 128-bit id given as two halves.
func NewUUID(hi, lo int64) Value { return Value{kind: KindUUID, i: lo, j: hi} }

// NewPoint wraps a geo.Point.
func NewPoint(p geo.Point) Value { return Value{kind: KindPoint, f: p.X, f2: p.Y} }

// NewRect wraps a geo.Rect.
func NewRect(r geo.Rect) Value {
	return Value{kind: KindRect, f: r.MinX, f2: r.MinY, f3: r.MaxX, f4: r.MaxY}
}

// NewPolygon wraps a polygon.
func NewPolygon(p *geo.Polygon) Value { return Value{kind: KindPolygon, poly: p} }

// NewInterval wraps an interval.
func NewInterval(iv interval.Interval) Value {
	return Value{kind: KindInterval, i: iv.Start, j: iv.End}
}

// NewList wraps a list of values.
func NewList(vs []Value) Value { return Value{kind: KindList, list: vs} }

// NewLineString wraps a polyline.
func NewLineString(ls *geo.LineString) Value { return Value{kind: KindLineString, line: ls} }

// Kind returns the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; it panics on kind mismatch, which
// indicates a planner bug rather than a data error.
func (v Value) Bool() bool { v.check(KindBool); return v.i != 0 }

// Int64 returns the integer payload.
func (v Value) Int64() int64 { v.check(KindInt64); return v.i }

// Float64 returns the float payload.
func (v Value) Float64() float64 { v.check(KindFloat64); return v.f }

// Str returns the string payload.
func (v Value) Str() string { v.check(KindString); return v.s }

// UUID returns the (hi, lo) halves of the id payload.
func (v Value) UUID() (hi, lo int64) { v.check(KindUUID); return v.j, v.i }

// Point returns the point payload.
func (v Value) Point() geo.Point { v.check(KindPoint); return geo.Point{X: v.f, Y: v.f2} }

// Rect returns the rect payload.
func (v Value) Rect() geo.Rect {
	v.check(KindRect)
	return geo.Rect{MinX: v.f, MinY: v.f2, MaxX: v.f3, MaxY: v.f4}
}

// Polygon returns the polygon payload.
func (v Value) Polygon() *geo.Polygon { v.check(KindPolygon); return v.poly }

// Interval returns the interval payload.
func (v Value) Interval() interval.Interval {
	v.check(KindInterval)
	return interval.Interval{Start: v.i, End: v.j}
}

// List returns the list payload.
func (v Value) List() []Value { v.check(KindList); return v.list }

// LineString returns the polyline payload.
func (v Value) LineString() *geo.LineString { v.check(KindLineString); return v.line }

func (v Value) check(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("types: value is %v, not %v", v.kind, k))
	}
}

// AsFloat widens int64 or float64 to float64 for numeric comparison.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt64:
		return float64(v.i), true
	case KindFloat64:
		return v.f, true
	}
	return 0, false
}

// MBR returns the minimum bounding rectangle of a spatial value
// (point, rect, or polygon) and reports whether the value is spatial.
func (v Value) MBR() (geo.Rect, bool) {
	switch v.kind {
	case KindPoint:
		return geo.RectFromPoint(geo.Point{X: v.f, Y: v.f2}), true
	case KindRect:
		return geo.Rect{MinX: v.f, MinY: v.f2, MaxX: v.f3, MaxY: v.f4}, true
	case KindPolygon:
		return v.poly.MBR(), true
	case KindLineString:
		return v.line.MBR(), true
	}
	return geo.EmptyRect(), false
}

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.i != 0)
	case KindInt64:
		return strconv.FormatInt(v.i, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindUUID:
		return fmt.Sprintf("uuid(%x%x)", uint64(v.j), uint64(v.i))
	case KindPoint:
		return v.Point().String()
	case KindRect:
		return v.Rect().String()
	case KindPolygon:
		return v.poly.String()
	case KindLineString:
		return v.line.String()
	case KindInterval:
		return v.Interval().String()
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	return "?"
}

// Equal reports deep equality of two values. Values of different kinds
// are never equal (no implicit numeric coercion; the planner inserts
// explicit casts).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool, KindInt64:
		return v.i == o.i
	case KindFloat64:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	case KindUUID, KindInterval:
		return v.i == o.i && v.j == o.j
	case KindPoint:
		return v.f == o.f && v.f2 == o.f2
	case KindRect:
		return v.f == o.f && v.f2 == o.f2 && v.f3 == o.f3 && v.f4 == o.f4
	case KindPolygon:
		if len(v.poly.Ring) != len(o.poly.Ring) {
			return false
		}
		for i := range v.poly.Ring {
			if v.poly.Ring[i] != o.poly.Ring[i] {
				return false
			}
		}
		return true
	case KindLineString:
		if len(v.line.Points) != len(o.line.Points) {
			return false
		}
		for i := range v.line.Points {
			if v.line.Points[i] != o.line.Points[i] {
				return false
			}
		}
		return true
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values of the same kind: -1, 0, or +1. Ordering
// across kinds follows kind order (so heterogeneous sort keys are
// stable). Spatial kinds order by their MBR min corner.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		return cmpInt(int64(v.kind), int64(o.kind))
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool, KindInt64:
		return cmpInt(v.i, o.i)
	case KindFloat64:
		return cmpFloat(v.f, o.f)
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindUUID:
		if c := cmpInt(v.j, o.j); c != 0 {
			return c
		}
		return cmpInt(v.i, o.i)
	case KindInterval:
		if c := cmpInt(v.i, o.i); c != 0 {
			return c
		}
		return cmpInt(v.j, o.j)
	case KindPoint:
		if c := cmpFloat(v.f, o.f); c != 0 {
			return c
		}
		return cmpFloat(v.f2, o.f2)
	case KindRect:
		for _, pair := range [][2]float64{{v.f, o.f}, {v.f2, o.f2}, {v.f3, o.f3}, {v.f4, o.f4}} {
			if c := cmpFloat(pair[0], pair[1]); c != 0 {
				return c
			}
		}
		return 0
	case KindPolygon:
		a, b := v.poly.MBR(), o.poly.MBR()
		return NewRect(a).Compare(NewRect(b))
	case KindLineString:
		a, b := v.line.MBR(), o.line.MBR()
		if c := NewRect(a).Compare(NewRect(b)); c != 0 {
			return c
		}
		return cmpInt(int64(len(v.line.Points)), int64(len(o.line.Points)))
	case KindList:
		n := len(v.list)
		if len(o.list) < n {
			n = len(o.list)
		}
		for i := 0; i < n; i++ {
			if c := v.list[i].Compare(o.list[i]); c != 0 {
				return c
			}
		}
		return cmpInt(int64(len(v.list)), int64(len(o.list)))
	}
	return 0
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// hash64 is an FNV-1a accumulator. The fixed basis and prime make hash
// partitioning identical across processes — maphash's per-process seed
// would reroute shuffles on every run, which breaks cross-run trace
// comparisons and the byte-identical re-execution the determinism
// suite promises.
type hash64 uint64

const (
	fnvBasis uint64 = 14695981039346656037
	fnvPrime uint64 = 1099511628211
)

func (h *hash64) writeByte(b byte) {
	*h = hash64((uint64(*h) ^ uint64(b)) * fnvPrime)
}

func (h *hash64) write(p []byte) {
	for _, b := range p {
		h.writeByte(b)
	}
}

func (h *hash64) writeString(s string) {
	for i := 0; i < len(s); i++ {
		h.writeByte(s[i])
	}
}

// finish avalanches the raw FNV state (splitmix64 finalizer). FNV-1a
// diffuses poorly into its low bits, and partition routing reduces the
// hash mod a small partition count — without mixing, consecutive
// integer keys route in a short periodic pattern that can keep every
// record on its home node.
func (h hash64) finish() uint64 {
	x := uint64(h)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash returns a hash of the value suitable for hash partitioning and
// hash joins. Equal values hash equally, across processes.
func (v Value) Hash() uint64 {
	h := hash64(fnvBasis)
	v.hashInto(&h)
	return h.finish()
}

func (v Value) hashInto(h *hash64) {
	h.writeByte(byte(v.kind))
	switch v.kind {
	case KindBool, KindInt64:
		writeInt(h, v.i)
	case KindFloat64:
		writeInt(h, int64(math.Float64bits(v.f)))
	case KindString:
		h.writeString(v.s)
	case KindUUID, KindInterval:
		writeInt(h, v.i)
		writeInt(h, v.j)
	case KindPoint:
		writeInt(h, int64(math.Float64bits(v.f)))
		writeInt(h, int64(math.Float64bits(v.f2)))
	case KindRect:
		for _, f := range []float64{v.f, v.f2, v.f3, v.f4} {
			writeInt(h, int64(math.Float64bits(f)))
		}
	case KindPolygon:
		for _, p := range v.poly.Ring {
			writeInt(h, int64(math.Float64bits(p.X)))
			writeInt(h, int64(math.Float64bits(p.Y)))
		}
	case KindLineString:
		for _, p := range v.line.Points {
			writeInt(h, int64(math.Float64bits(p.X)))
			writeInt(h, int64(math.Float64bits(p.Y)))
		}
	case KindList:
		for _, e := range v.list {
			e.hashInto(h)
		}
	}
}

func writeInt(h *hash64, v int64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.write(b[:])
}

// HashString hashes an arbitrary string with the same fixed-basis FNV
// as Value.Hash, for callers that partition by serialized keys.
func HashString(s string) uint64 {
	h := hash64(fnvBasis)
	h.writeString(s)
	return h.finish()
}

// MarshalWire encodes the value with a leading kind byte.
func (v Value) MarshalWire(e *wire.Encoder) {
	e.Byte(byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool, KindInt64:
		e.Varint(v.i)
	case KindFloat64:
		e.Float64(v.f)
	case KindString:
		e.String(v.s)
	case KindUUID, KindInterval:
		e.Varint(v.i)
		e.Varint(v.j)
	case KindPoint:
		e.Float64(v.f)
		e.Float64(v.f2)
	case KindRect:
		e.Float64(v.f)
		e.Float64(v.f2)
		e.Float64(v.f3)
		e.Float64(v.f4)
	case KindPolygon:
		v.poly.MarshalWire(e)
	case KindLineString:
		v.line.MarshalWire(e)
	case KindList:
		e.Uvarint(uint64(len(v.list)))
		for _, elem := range v.list {
			elem.MarshalWire(e)
		}
	}
}

// DecodeValue reads one value from d.
func DecodeValue(d *wire.Decoder) (Value, error) {
	kb, err := d.Byte()
	if err != nil {
		return Null, err
	}
	k := Kind(kb)
	switch k {
	case KindNull:
		return Null, nil
	case KindBool, KindInt64:
		i, err := d.Varint()
		if err != nil {
			return Null, err
		}
		return Value{kind: k, i: i}, nil
	case KindFloat64:
		f, err := d.Float64()
		if err != nil {
			return Null, err
		}
		return NewFloat64(f), nil
	case KindString:
		s, err := d.String()
		if err != nil {
			return Null, err
		}
		return NewString(s), nil
	case KindUUID, KindInterval:
		i, err := d.Varint()
		if err != nil {
			return Null, err
		}
		j, err := d.Varint()
		if err != nil {
			return Null, err
		}
		return Value{kind: k, i: i, j: j}, nil
	case KindPoint:
		x, err := d.Float64()
		if err != nil {
			return Null, err
		}
		y, err := d.Float64()
		if err != nil {
			return Null, err
		}
		return NewPoint(geo.Point{X: x, Y: y}), nil
	case KindRect:
		var r geo.Rect
		if err := r.UnmarshalWire(d); err != nil {
			return Null, err
		}
		return NewRect(r), nil
	case KindPolygon:
		var p geo.Polygon
		if err := p.UnmarshalWire(d); err != nil {
			return Null, err
		}
		return NewPolygon(&p), nil
	case KindLineString:
		var ls geo.LineString
		if err := ls.UnmarshalWire(d); err != nil {
			return Null, err
		}
		return NewLineString(&ls), nil
	case KindList:
		n, err := d.UvarintCount(1)
		if err != nil {
			return Null, err
		}
		list := make([]Value, n)
		for i := range list {
			if list[i], err = DecodeValue(d); err != nil {
				return Null, err
			}
		}
		return NewList(list), nil
	}
	return Null, fmt.Errorf("types: unknown value kind %d", kb)
}
