package types

import (
	"strings"
	"testing"

	"fudj/internal/geo"
	"fudj/internal/interval"
)

func TestNativeConversions(t *testing.T) {
	poly := geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})
	cases := []struct {
		v    Value
		want any
	}{
		{Null, nil},
		{NewBool(true), true},
		{NewInt64(-3), int64(-3)},
		{NewFloat64(1.5), 1.5},
		{NewString("x"), "x"},
		{NewUUID(7, 9), [2]int64{7, 9}},
		{NewPoint(geo.Point{X: 1, Y: 2}), geo.Point{X: 1, Y: 2}},
		{NewRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}), geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}},
		{NewInterval(interval.Interval{Start: 1, End: 2}), interval.Interval{Start: 1, End: 2}},
	}
	for _, c := range cases {
		got := c.v.Native()
		if got != c.want {
			t.Errorf("Native(%v) = %#v, want %#v", c.v, got, c.want)
		}
	}
	// Polygon converts to its pointer.
	if got := NewPolygon(poly).Native(); got != poly {
		t.Errorf("Native(polygon) = %v", got)
	}
	// String lists become []string.
	sl := NewList([]Value{NewString("a"), NewString("b")}).Native().([]string)
	if len(sl) != 2 || sl[1] != "b" {
		t.Errorf("string list native = %v", sl)
	}
	// Mixed lists become []any.
	ml := NewList([]Value{NewInt64(1), NewString("b")}).Native().([]any)
	if len(ml) != 2 || ml[0] != int64(1) {
		t.Errorf("mixed list native = %v", ml)
	}
}

func TestGeometryExtraction(t *testing.T) {
	poly := geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})
	for _, v := range []Value{
		NewPoint(geo.Point{X: 1, Y: 1}),
		NewRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}),
		NewPolygon(poly),
	} {
		g, ok := v.Geometry()
		if !ok || g == nil {
			t.Errorf("Geometry(%v) failed", v)
		}
		if g.Bounds().IsEmpty() {
			t.Errorf("Geometry(%v) has empty bounds", v)
		}
	}
	if _, ok := NewInt64(1).Geometry(); ok {
		t.Error("int should not be a geometry")
	}
	// GeometryNative passes geometries through.
	if _, ok := GeometryNative(geo.Point{X: 1, Y: 1}); !ok {
		t.Error("GeometryNative(point) failed")
	}
	if _, ok := GeometryNative("nope"); ok {
		t.Error("GeometryNative(string) should fail")
	}
}

func TestValueStrings(t *testing.T) {
	poly := geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})
	cases := map[string]Value{
		"null":           Null,
		"true":           NewBool(true),
		"-42":            NewInt64(-42),
		"2.5":            NewFloat64(2.5),
		`"hi"`:           NewString("hi"),
		"POINT(1 2)":     NewPoint(geo.Point{X: 1, Y: 2}),
		"[3,9]":          NewInterval(interval.Interval{Start: 3, End: 9}),
		"RECT(0 0, 1 1)": NewRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
	if s := NewPolygon(poly).String(); !strings.Contains(s, "POLYGON(3 vertices") {
		t.Errorf("polygon String = %q", s)
	}
	if s := NewList([]Value{NewInt64(1), NewString("a")}).String(); s != `[1, "a"]` {
		t.Errorf("list String = %q", s)
	}
	if s := NewUUID(1, 2).String(); !strings.HasPrefix(s, "uuid(") {
		t.Errorf("uuid String = %q", s)
	}
	rec := Record{NewInt64(1), NewString("x")}
	if got := rec.String(); got != `{1, "x"}` {
		t.Errorf("record String = %q", got)
	}
}

func TestKindAndIsNull(t *testing.T) {
	if Null.Kind() != KindNull || !Null.IsNull() {
		t.Error("Null kind")
	}
	if NewInt64(1).IsNull() {
		t.Error("int is not null")
	}
	if KindPolygon.String() != "polygon" || Kind(200).String() == "" {
		t.Error("Kind strings")
	}
}

func TestNativePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for corrupt kind")
		}
	}()
	v := Value{kind: Kind(99)}
	v.Native()
}
