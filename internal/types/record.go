package types

import (
	"fmt"
	"strings"

	"fudj/internal/wire"
)

// Field describes one column of a schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema describes the columns of a record stream.
type Schema struct {
	Fields []Field
	byName map[string]int
}

// NewSchema builds a schema. Field names must be unique; duplicates
// indicate a planner bug and panic.
func NewSchema(fields ...Field) *Schema {
	s := &Schema{Fields: fields, byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if _, dup := s.byName[f.Name]; dup {
			panic(fmt.Sprintf("types: duplicate field %q in schema", f.Name))
		}
		s.byName[f.Name] = i
	}
	return s
}

// Index returns the position of the named field, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustIndex returns the position of the named field and panics if the
// field does not exist (a planner bug, not a data error).
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("types: no field %q in schema %v", name, s))
	}
	return i
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.Fields) }

// Concat returns a new schema with other's fields appended. Name
// collisions are resolved by prefixing the colliding right-side field
// with "r_", mirroring how join outputs qualify duplicate columns.
func (s *Schema) Concat(other *Schema) *Schema {
	fields := make([]Field, 0, len(s.Fields)+len(other.Fields))
	fields = append(fields, s.Fields...)
	taken := make(map[string]bool, len(fields))
	for _, f := range fields {
		taken[f.Name] = true
	}
	for _, f := range other.Fields {
		name := f.Name
		for taken[name] {
			name = "r_" + name
		}
		taken[name] = true
		fields = append(fields, Field{Name: name, Kind: f.Kind})
	}
	return NewSchema(fields...)
}

// Project returns a schema of the given field positions.
func (s *Schema) Project(idx []int) *Schema {
	fields := make([]Field, len(idx))
	for i, j := range idx {
		fields[i] = s.Fields[j]
	}
	return NewSchema(fields...)
}

// String renders the schema as (name:kind, ...).
func (s *Schema) String() string {
	parts := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		parts[i] = f.Name + ":" + f.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Record is one tuple: a slice of values positionally matching a schema.
type Record []Value

// Clone returns a copy of the record (values are immutable, so a
// shallow copy of the slice suffices).
func (r Record) Clone() Record {
	out := make(Record, len(r))
	copy(out, r)
	return out
}

// String renders the record for display.
func (r Record) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// MarshalWire encodes the record as a field count plus values.
func (r Record) MarshalWire(e *wire.Encoder) {
	e.Uvarint(uint64(len(r)))
	for _, v := range r {
		v.MarshalWire(e)
	}
}

// DecodeRecord reads one record from d.
func DecodeRecord(d *wire.Decoder) (Record, error) {
	n, err := d.UvarintCount(1) // every value encodes at least a kind byte
	if err != nil {
		return nil, err
	}
	r := make(Record, n)
	for i := range r {
		if r[i], err = DecodeValue(d); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// EncodeRecords encodes a batch of records into one buffer.
func EncodeRecords(recs []Record) []byte {
	e := wire.NewEncoder(len(recs) * 32)
	e.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		r.MarshalWire(e)
	}
	return e.Bytes()
}

// DecodeRecords decodes a batch encoded by EncodeRecords.
func DecodeRecords(buf []byte) ([]Record, error) {
	d := wire.NewDecoder(buf)
	// Every record needs at least one byte, so UvarintCount rejects a
	// corrupted header claiming more records than the buffer can hold
	// before anything is allocated for them.
	n, err := d.UvarintCount(1)
	if err != nil {
		return nil, fmt.Errorf("types: record batch count: %w", err)
	}
	out := make([]Record, n)
	for i := range out {
		if out[i], err = DecodeRecord(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}
