package types

import (
	"bytes"
	"strings"
	"testing"

	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/wire"
)

// FuzzDecodeRecords drives the shuffle payload decoder with arbitrary
// bytes. The decoder guards every cross-node transfer, so the
// contract is strict: it must never panic or over-allocate on damaged
// input, and anything it accepts must survive a re-encode round trip.
func FuzzDecodeRecords(f *testing.F) {
	// Seed with the corrupt_test.go corpus shapes: valid batches of
	// every value kind, truncations, an absurd record count, and
	// single-byte damage.
	rich := []Record{
		{NewInt64(-7), NewString("seed"), NewBool(true)},
		{NewFloat64(3.25), NewPoint(geo.Point{X: 1, Y: 2}), Null},
		{NewInterval(interval.Interval{Start: 10, End: 20}),
			NewPolygon(geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}))},
	}
	f.Add(EncodeRecords(rich))
	f.Add(EncodeRecords(nil))
	f.Add(EncodeRecords(batch(3)))
	full := EncodeRecords(batch(5))
	f.Add(full[:len(full)/2])                                           // truncated mid-record
	f.Add(full[:1])                                                     // truncated mid-header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // ~2^63 records claimed
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeRecords(data)
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		// Accepted input must round-trip: decode(encode(decode(x)))
		// equals decode(x) field for field.
		again, err := DecodeRecords(EncodeRecords(recs))
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d != %d", len(again), len(recs))
		}
		for i := range recs {
			if len(again[i]) != len(recs[i]) {
				t.Fatalf("record %d: field count %d != %d", i, len(again[i]), len(recs[i]))
			}
			for j := range recs[i] {
				if !again[i][j].Equal(recs[i][j]) && !sameWire(again[i][j], recs[i][j]) {
					t.Fatalf("record %d field %d: %v != %v", i, j, again[i][j], recs[i][j])
				}
			}
		}
	})
}

// isNaN reports whether a value is a float NaN (the one value that is
// never Equal to itself).
func isNaN(v Value) bool {
	return v.Kind() == KindFloat64 && v.Float64() != v.Float64()
}

// sameWire reports whether two values have identical wire encodings —
// the equality that matters for codec round trips. Unlike Equal it
// treats bit-identical NaNs buried inside composite values (geometry
// coordinates, interval-derived floats) as equal.
func sameWire(a, b Value) bool {
	ea, eb := wire.NewEncoder(32), wire.NewEncoder(32)
	a.MarshalWire(ea)
	b.MarshalWire(eb)
	return bytes.Equal(ea.Bytes(), eb.Bytes())
}

// FuzzMemSize pins the memory accounting against arbitrary decoded
// records: estimates must be positive and grow with payload size,
// since the budget enforcement divides by them.
func FuzzMemSize(f *testing.F) {
	f.Add(EncodeRecords(batch(2)), 10)
	f.Add(EncodeRecords(nil), 1000)
	f.Fuzz(func(t *testing.T, data []byte, pad int) {
		recs, err := DecodeRecords(data)
		if err != nil {
			return
		}
		if pad < 0 {
			pad = -pad
		}
		pad %= 1 << 16
		for _, r := range recs {
			sz := r.MemSize()
			if sz <= 0 {
				t.Fatalf("MemSize = %d for non-nil record", sz)
			}
			grown := append(append(Record{}, r...), NewString(strings.Repeat("p", pad)))
			if grown.MemSize() < sz+int64(pad) {
				t.Fatalf("MemSize did not grow with payload: %d -> %d (pad %d)",
					sz, grown.MemSize(), pad)
			}
		}
	})
}
