package text

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"a a a b", []string{"a", "b"}},
		{"River; Scenic-Landscape Camping", []string{"river", "scenic", "landscape", "camping"}},
		{"  42 answers  ", []string{"42", "answers"}},
		{"ONE one One", []string{"one"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 0},
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3.0},
		{[]string{"a", "b", "c", "d"}, []string{"c", "d", "e"}, 2.0 / 5.0},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); got != c.want {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Jaccard(c.b, c.a); got != c.want {
			t.Errorf("Jaccard not symmetric for (%v, %v)", c.a, c.b)
		}
	}
}

func TestPrefixLength(t *testing.T) {
	cases := []struct {
		l    int
		t    float64
		want int
	}{
		{0, 0.9, 0},
		{10, 0.9, 2}, // 10 - ceil(9) + 1
		{10, 0.5, 6}, // 10 - 5 + 1
		{10, 1.0, 1}, // exact match still needs one token indexed
		{3, 0.9, 1},  // 3 - ceil(2.7)=3 + 1
		{5, 0.01, 5}, // near-zero threshold indexes everything
	}
	for _, c := range cases {
		if got := PrefixLength(c.l, c.t); got != c.want {
			t.Errorf("PrefixLength(%d, %v) = %d, want %d", c.l, c.t, got, c.want)
		}
	}
}

func TestBuildRankTable(t *testing.T) {
	rt := BuildRankTable(map[string]int64{"common": 100, "rare": 1, "mid": 10})
	if rt.Rank("rare") != 0 || rt.Rank("mid") != 1 || rt.Rank("common") != 2 {
		t.Errorf("ranks = rare:%d mid:%d common:%d", rt.Rank("rare"), rt.Rank("mid"), rt.Rank("common"))
	}
	if rt.Rank("never-seen") != 3 {
		t.Errorf("unseen rank = %d, want 3", rt.Rank("never-seen"))
	}
	if rt.Size() != 3 {
		t.Errorf("Size = %d, want 3", rt.Size())
	}
	// Ties broken deterministically by token text.
	rt2 := BuildRankTable(map[string]int64{"b": 5, "a": 5})
	if rt2.Rank("a") != 0 || rt2.Rank("b") != 1 {
		t.Error("tie-break by token text failed")
	}
}

func TestPrefixRanks(t *testing.T) {
	rt := BuildRankTable(map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4})
	got := rt.PrefixRanks([]string{"d", "b", "a", "c"}, 0.5)
	// l=4, p = 4 - 2 + 1 = 3; rarest three ranks are 0,1,2.
	want := []int{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PrefixRanks = %v, want %v", got, want)
	}
}

// Property: the prefix-filter is complete — any pair of token sets with
// Jaccard >= threshold shares at least one prefix rank. This is the
// invariant that makes the text-similarity FUDJ's ASSIGN lossless.
func TestQuickPrefixFilterCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	counts := make(map[string]int64)
	for i, tok := range vocab {
		counts[tok] = int64(i*i + 1)
	}
	rt := BuildRankTable(counts)

	randSet := func() []string {
		n := 1 + rng.Intn(8)
		seen := map[string]bool{}
		var out []string
		for len(out) < n {
			tok := vocab[rng.Intn(len(vocab))]
			if !seen[tok] {
				seen[tok] = true
				out = append(out, tok)
			}
		}
		return out
	}

	for _, threshold := range []float64{0.5, 0.7, 0.9} {
		for trial := 0; trial < 3000; trial++ {
			a, b := randSet(), randSet()
			if Jaccard(a, b) < threshold {
				continue
			}
			pa := rt.PrefixRanks(a, threshold)
			pb := rt.PrefixRanks(b, threshold)
			share := false
			for _, ra := range pa {
				for _, rb := range pb {
					if ra == rb {
						share = true
					}
				}
			}
			if !share {
				t.Fatalf("threshold %v: similar sets %v and %v share no prefix rank (%v vs %v)",
					threshold, a, b, pa, pb)
			}
		}
	}
}

// Property: Jaccard is bounded in [0,1] and equals 1 iff sets are equal.
func TestQuickJaccardBounds(t *testing.T) {
	f := func(a, b []string) bool {
		da, db := dedup(a), dedup(b)
		j := Jaccard(da, db)
		if j < 0 || j > 1 {
			return false
		}
		if j == 1 && !sameSet(da, db) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, s := range a {
		m[s] = true
	}
	for _, s := range b {
		if !m[s] {
			return false
		}
	}
	return true
}
