// Package text provides the tokenization, token-frequency ranking,
// prefix-filter, and Jaccard-similarity machinery behind the
// text-similarity FUDJ (§V-B), which follows the prefix-filtering
// set-similarity join of Vernica et al. / Kim et al.
package text

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens, deduplicated (the join
// operates on token *sets*, as Jaccard similarity requires). Order of
// the returned tokens follows first appearance.
func Tokenize(s string) []string {
	var tokens []string
	seen := make(map[string]struct{})
	start := -1
	lower := strings.ToLower(s)
	flush := func(end int) {
		if start < 0 {
			return
		}
		tok := lower[start:end]
		if _, dup := seen[tok]; !dup {
			seen[tok] = struct{}{}
			tokens = append(tokens, tok)
		}
		start = -1
	}
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(lower))
	return tokens
}

// Jaccard returns |a ∩ b| / |a ∪ b| for two token sets. Both inputs
// must already be deduplicated (as Tokenize guarantees). Two empty sets
// have similarity 0 by convention.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	set := make(map[string]struct{}, len(small))
	for _, t := range small {
		set[t] = struct{}{}
	}
	inter := 0
	for _, t := range large {
		if _, ok := set[t]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// PrefixLength returns the number of least-frequent tokens of a record
// with l tokens that must be indexed so that any pair with Jaccard
// similarity >= threshold shares at least one prefix token:
// p = l - ceil(threshold*l) + 1 (the paper's ASSIGN pseudo-code).
// It is clamped to [0, l].
func PrefixLength(l int, threshold float64) int {
	if l == 0 {
		return 0
	}
	p := l - int(math.Ceil(threshold*float64(l))) + 1
	if p < 0 {
		p = 0
	}
	if p > l {
		p = l
	}
	return p
}

// RankTable maps each token to its global frequency rank: rank 0 is the
// rarest token. Tokens absent from the table are treated as globally
// unique and rank below (rarer than) everything present. This is the
// TokenRanks structure carried inside the text-similarity PPlan.
type RankTable struct {
	Ranks map[string]int
	// next is the synthetic rank handed to unseen tokens; all unseen
	// tokens share it, which is safe because a token unseen at summary
	// time appears in at most the records being assigned right now.
	Next int
}

// BuildRankTable sorts tokens by ascending global count (ties broken by
// token text for determinism) and assigns dense ranks. This is the
// sortByCount step of the paper's DIVIDE.
func BuildRankTable(counts map[string]int64) *RankTable {
	type tc struct {
		tok string
		n   int64
	}
	all := make([]tc, 0, len(counts))
	for tok, n := range counts {
		all = append(all, tc{tok, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n < all[j].n
		}
		return all[i].tok < all[j].tok
	})
	ranks := make(map[string]int, len(all))
	for i, e := range all {
		ranks[e.tok] = i
	}
	return &RankTable{Ranks: ranks, Next: len(all)}
}

// Rank returns the global rank for tok; unseen tokens rank last.
func (rt *RankTable) Rank(tok string) int {
	if r, ok := rt.Ranks[tok]; ok {
		return r
	}
	return rt.Next
}

// Size returns the number of distinct tokens in the table.
func (rt *RankTable) Size() int { return len(rt.Ranks) }

// PrefixRanks returns the ranks of the p rarest tokens of the given
// token set, sorted ascending (rarest first), where
// p = PrefixLength(len(tokens), threshold). These ranks are the bucket
// ids the record is assigned to.
func (rt *RankTable) PrefixRanks(tokens []string, threshold float64) []int {
	ranks := make([]int, len(tokens))
	for i, tok := range tokens {
		ranks[i] = rt.Rank(tok)
	}
	sort.Ints(ranks)
	p := PrefixLength(len(tokens), threshold)
	return ranks[:p]
}
