package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64}
	e := NewEncoder(64)
	for _, v := range cases {
		e.Uvarint(v)
	}
	d := NewDecoder(e.Bytes())
	for _, want := range cases {
		got, err := d.Uvarint()
		if err != nil {
			t.Fatalf("Uvarint: %v", err)
		}
		if got != want {
			t.Errorf("Uvarint round trip: got %d, want %d", got, want)
		}
	}
	if d.Remaining() != 0 {
		t.Errorf("decoder has %d bytes left, want 0", d.Remaining())
	}
}

func TestVarintRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64}
	e := NewEncoder(64)
	for _, v := range cases {
		e.Varint(v)
	}
	d := NewDecoder(e.Bytes())
	for _, want := range cases {
		got, err := d.Varint()
		if err != nil {
			t.Fatalf("Varint: %v", err)
		}
		if got != want {
			t.Errorf("Varint round trip: got %d, want %d", got, want)
		}
	}
}

func TestMixedRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.Varint(-42)
	e.Float64(3.5)
	e.Bool(true)
	e.Bool(false)
	e.String("hello, 世界")
	e.BytesField([]byte{1, 2, 3})
	e.Byte(0xAB)

	d := NewDecoder(e.Bytes())
	if v, _ := d.Varint(); v != -42 {
		t.Errorf("Varint = %d, want -42", v)
	}
	if v, _ := d.Float64(); v != 3.5 {
		t.Errorf("Float64 = %v, want 3.5", v)
	}
	if v, _ := d.Bool(); !v {
		t.Error("Bool #1 = false, want true")
	}
	if v, _ := d.Bool(); v {
		t.Error("Bool #2 = true, want false")
	}
	if v, _ := d.String(); v != "hello, 世界" {
		t.Errorf("String = %q", v)
	}
	b, _ := d.BytesField()
	if len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("BytesField = %v", b)
	}
	if v, _ := d.Byte(); v != 0xAB {
		t.Errorf("Byte = %#x, want 0xAB", v)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestFloat64SpecialValues(t *testing.T) {
	cases := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	e := NewEncoder(0)
	for _, v := range cases {
		e.Float64(v)
	}
	d := NewDecoder(e.Bytes())
	for _, want := range cases {
		got, err := d.Float64()
		if err != nil {
			t.Fatal(err)
		}
		if got != want || math.Signbit(got) != math.Signbit(want) {
			t.Errorf("Float64 round trip: got %v, want %v", got, want)
		}
	}
	// NaN compares unequal to itself; check bit pattern survives.
	e.Reset()
	e.Float64(math.NaN())
	got, err := NewDecoder(e.Bytes()).Float64()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got) {
		t.Errorf("NaN round trip produced %v", got)
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder(nil)
	if _, err := d.Uvarint(); err == nil {
		t.Error("Uvarint on empty buffer: want error")
	}
	if _, err := d.Varint(); err == nil {
		t.Error("Varint on empty buffer: want error")
	}
	if _, err := d.Float64(); err == nil {
		t.Error("Float64 on empty buffer: want error")
	}
	if _, err := d.Byte(); err == nil {
		t.Error("Byte on empty buffer: want error")
	}
	// A length prefix that exceeds the remaining bytes must error, not panic.
	e := NewEncoder(0)
	e.Uvarint(100)
	d = NewDecoder(e.Bytes())
	if _, err := d.String(); err == nil {
		t.Error("String with lying length prefix: want error")
	}
	e.Reset()
	e.Uvarint(100)
	d = NewDecoder(e.Bytes())
	if _, err := d.BytesField(); err == nil {
		t.Error("BytesField with lying length prefix: want error")
	}
}

func TestReset(t *testing.T) {
	e := NewEncoder(0)
	e.String("abc")
	if e.Len() == 0 {
		t.Fatal("Len = 0 after write")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Errorf("Len = %d after Reset, want 0", e.Len())
	}
}

// Property: any sequence of (int64, string, float64) triples round-trips.
func TestQuickTripleRoundTrip(t *testing.T) {
	f := func(i int64, s string, fl float64) bool {
		e := NewEncoder(0)
		e.Varint(i)
		e.String(s)
		e.Float64(fl)
		d := NewDecoder(e.Bytes())
		gi, err1 := d.Varint()
		gs, err2 := d.String()
		gf, err3 := d.Float64()
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if math.IsNaN(fl) {
			return gi == i && gs == s && math.IsNaN(gf)
		}
		return gi == i && gs == s && gf == fl && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: uvarint encoding is prefix-free within our stream model —
// decoding consumes exactly the bytes that were appended.
func TestQuickUvarintExactConsumption(t *testing.T) {
	f := func(vals []uint64) bool {
		e := NewEncoder(0)
		for _, v := range vals {
			e.Uvarint(v)
		}
		d := NewDecoder(e.Bytes())
		for _, want := range vals {
			got, err := d.Uvarint()
			if err != nil || got != want {
				return false
			}
		}
		return d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadUvarintCount(t *testing.T) {
	enc := func(n uint64) *bytes.Reader {
		var buf [binary.MaxVarintLen64]byte
		w := binary.PutUvarint(buf[:], n)
		return bytes.NewReader(buf[:w])
	}

	// A count that fits the stated remaining bytes passes.
	n, err := ReadUvarintCount(enc(10), 40, 4)
	if err != nil || n != 10 {
		t.Fatalf("ReadUvarintCount(10, 40, 4) = %d, %v; want 10, nil", n, err)
	}

	// A count the remaining input cannot hold is a corruption error,
	// reported before any caller allocation.
	if _, err := ReadUvarintCount(enc(11), 40, 4); err == nil {
		t.Fatal("count 11 with 40 remaining at 4 bytes/elem should fail")
	}
	if _, err := ReadUvarintCount(enc(1<<62), 1<<20, 1); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("absurd count error = %v, want ErrShortBuffer", err)
	}

	// Negative remaining (caller bookkeeping bug) rejects everything.
	if _, err := ReadUvarintCount(enc(0), -1, 1); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("negative remaining error = %v, want ErrShortBuffer", err)
	}

	// minElemSize below 1 is clamped, not a divide-by-zero.
	if _, err := ReadUvarintCount(enc(5), 5, 0); err != nil {
		t.Fatalf("minElemSize 0: %v", err)
	}
}
