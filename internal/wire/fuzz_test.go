package wire

import (
	"testing"
)

// FuzzDecoder drives the primitive decoder with arbitrary bytes and an
// arbitrary read script. The decoder sits under every shuffle payload,
// summary, and plan transfer, so the contract is: reads never panic,
// never report a negative remaining count, and the offset only moves
// forward.
func FuzzDecoder(f *testing.F) {
	valid := NewEncoder(64)
	valid.Uvarint(7)
	valid.Varint(-7)
	valid.Float64(1.5)
	valid.Bool(true)
	valid.String("seed")
	valid.BytesField([]byte{1, 2, 3})
	f.Add(valid.Bytes(), []byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, []byte{0, 6})
	f.Add([]byte{0x80, 0x80, 0x80}, []byte{0, 0, 1})

	f.Fuzz(func(t *testing.T, data, script []byte) {
		d := NewDecoder(data)
		for _, op := range script {
			before := d.Offset()
			var err error
			switch op % 7 {
			case 0:
				_, err = d.Uvarint()
			case 1:
				_, err = d.Varint()
			case 2:
				_, err = d.Float64()
			case 3:
				_, err = d.Bool()
			case 4:
				_, err = d.String()
			case 5:
				_, err = d.BytesField()
			case 6:
				_, err = d.UvarintCount(int(op))
			}
			if d.Remaining() < 0 {
				t.Fatalf("Remaining went negative after op %d", op%7)
			}
			if d.Offset() < before {
				t.Fatalf("Offset moved backwards: %d -> %d", before, d.Offset())
			}
			if err != nil {
				return
			}
		}
	})
}

// FuzzUvarintCountBound pins the allocation guard: an accepted count
// never exceeds what the remaining bytes can encode.
func FuzzUvarintCountBound(f *testing.F) {
	f.Add([]byte{0x05, 1, 2, 3, 4, 5}, 1)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, 16)
	f.Fuzz(func(t *testing.T, data []byte, elemSize int) {
		d := NewDecoder(data)
		n, err := d.UvarintCount(elemSize)
		if err != nil {
			return
		}
		if elemSize < 1 {
			elemSize = 1
		}
		if n < 0 || n > d.Remaining()/elemSize {
			t.Fatalf("UvarintCount accepted %d with only %d bytes left (elem %d)",
				n, d.Remaining(), elemSize)
		}
	})
}
