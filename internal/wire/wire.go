// Package wire implements the binary serialization used whenever data
// crosses a node boundary in the simulated cluster. Every tuple, summary,
// and partitioning plan shipped through an exchange operator is encoded
// with this package so that serialization cost — a first-class concern in
// the FUDJ paper's translation layer (Fig. 7) — is actually paid and
// measurable, rather than elided by in-process pointer passing.
//
// The format is a simple length-unprefixed stream: callers are expected
// to know the schema of what they read, exactly as a database runtime
// does. Integers use zig-zag varint encoding; strings and byte slices are
// length-prefixed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrShortBuffer is returned when a decoder runs out of input bytes.
var ErrShortBuffer = errors.New("wire: short buffer")

// Encoder appends primitive values to a growable byte buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The returned slice aliases the
// encoder's internal buffer and is invalidated by further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len reports the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset truncates the buffer, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a signed zig-zag varint.
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Float64 appends a float64 as 8 little-endian bytes.
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bool appends a boolean as a single byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Byte appends a single raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// BytesField appends a length-prefixed byte slice.
func (e *Encoder) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Raw appends bytes verbatim with no length prefix.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder consumes primitive values from a byte slice.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder reading from buf. The decoder does not
// copy buf; the caller must not mutate it while decoding.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset reports the current read position.
func (d *Decoder) Offset() int { return d.off }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint at offset %d: %w", d.off, ErrShortBuffer)
	}
	d.off += n
	return v, nil
}

// Varint reads a signed zig-zag varint.
func (d *Decoder) Varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint at offset %d: %w", d.off, ErrShortBuffer)
	}
	d.off += n
	return v, nil
}

// Float64 reads an 8-byte little-endian float64.
func (d *Decoder) Float64() (float64, error) {
	if d.Remaining() < 8 {
		return 0, ErrShortBuffer
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v, nil
}

// Bool reads a single-byte boolean.
func (d *Decoder) Bool() (bool, error) {
	b, err := d.Byte()
	return b != 0, err
}

// Byte reads a single raw byte.
func (d *Decoder) Byte() (byte, error) {
	if d.Remaining() < 1 {
		return 0, ErrShortBuffer
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

// UvarintCount reads an element count that precedes a sequence of
// elements, each occupying at least minElemSize encoded bytes, and
// rejects counts the remaining input cannot possibly hold. Decoders
// must size allocations with this rather than a raw Uvarint: a
// corrupted length prefix must produce an error, never a giant
// allocation.
func (d *Decoder) UvarintCount(minElemSize int) (int, error) {
	n, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if n > uint64(d.Remaining()/minElemSize) {
		return 0, fmt.Errorf("wire: count %d exceeds the %d remaining bytes: %w",
			n, d.Remaining(), ErrShortBuffer)
	}
	return int(n), nil
}

// ReadUvarintCount is the streaming analogue of UvarintCount: it reads
// an element count from r and rejects counts that claim more than
// remaining/minElemSize elements, which the input cannot possibly
// hold. Stream decoders (e.g. spill-run readers) must size allocations
// with this so a corrupted length prefix produces an error, never a
// giant allocation.
func ReadUvarintCount(r io.ByteReader, remaining int64, minElemSize int) (int, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if remaining < 0 || n > uint64(remaining)/uint64(minElemSize) {
		return 0, fmt.Errorf("wire: count %d exceeds the %d remaining bytes: %w",
			n, remaining, ErrShortBuffer)
	}
	return int(n), nil
}

// String reads a length-prefixed string.
func (d *Decoder) String() (string, error) {
	n, err := d.Uvarint()
	if err != nil {
		return "", err
	}
	if uint64(d.Remaining()) < n {
		return "", ErrShortBuffer
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// BytesField reads a length-prefixed byte slice. The returned slice
// aliases the decoder's input.
func (d *Decoder) BytesField() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(d.Remaining()) < n {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

// Marshaler is implemented by values that can encode themselves.
type Marshaler interface {
	MarshalWire(e *Encoder)
}

// Unmarshaler is implemented by values that can decode themselves.
type Unmarshaler interface {
	UnmarshalWire(d *Decoder) error
}
