package spindex

import (
	"math/rand"
	"testing"

	"fudj/internal/geo"
)

func randEntries(rng *rand.Rand, n int, span float64) []Entry {
	out := make([]Entry, n)
	for i := range out {
		x, y := rng.Float64()*span, rng.Float64()*span
		out[i] = Entry{
			MBR: geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*5, MaxY: y + rng.Float64()*5},
			Ref: i,
		}
	}
	return out
}

func collect(t *RTree, q geo.Rect) map[int]bool {
	out := map[int]bool{}
	t.Search(q, func(e Entry) {
		if out[e.Ref] {
			panic("duplicate visit")
		}
		out[e.Ref] = true
	})
	return out
}

func TestEmptyTree(t *testing.T) {
	tree := Build(nil)
	if tree.Size() != 0 || tree.Height() != 0 {
		t.Errorf("empty tree size/height = %d/%d", tree.Size(), tree.Height())
	}
	tree.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, func(Entry) {
		t.Error("visit on empty tree")
	})
}

func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 15, 16, 17, 250, 3000} {
		entries := randEntries(rng, n, 200)
		tree := Build(entries)
		if tree.Size() != n {
			t.Fatalf("Size = %d, want %d", tree.Size(), n)
		}
		for trial := 0; trial < 40; trial++ {
			x, y := rng.Float64()*200, rng.Float64()*200
			q := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*30, MaxY: y + rng.Float64()*30}
			got := collect(tree, q)
			want := map[int]bool{}
			for _, e := range entries {
				if e.MBR.Intersects(q) {
					want[e.Ref] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d: %d hits, want %d", n, len(got), len(want))
			}
			for ref := range want {
				if !got[ref] {
					t.Fatalf("n=%d: missing ref %d", n, ref)
				}
			}
		}
	}
}

func TestHeightLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree := Build(randEntries(rng, 4000, 500))
	// fanout 16: 4000 entries fit within height 3 (16^3 = 4096).
	if h := tree.Height(); h > 4 {
		t.Errorf("height = %d for 4000 entries", h)
	}
}

func TestEmptyQueryRect(t *testing.T) {
	tree := Build(randEntries(rand.New(rand.NewSource(1)), 50, 10))
	tree.Search(geo.EmptyRect(), func(Entry) {
		t.Error("visit with empty query")
	})
}

func BenchmarkRTreeVsLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	entries := randEntries(rng, 50000, 2000)
	tree := Build(entries)
	queries := make([]geo.Rect, 256)
	for i := range queries {
		x, y := rng.Float64()*2000, rng.Float64()*2000
		queries[i] = geo.Rect{MinX: x, MinY: y, MaxX: x + 10, MaxY: y + 10}
	}
	sink := 0
	b.Run("rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.Search(queries[i%len(queries)], func(Entry) { sink++ })
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			for _, e := range entries {
				if e.MBR.Intersects(q) {
					sink++
				}
			}
		}
	})
	_ = sink
}
