// Package spindex provides a static, bulk-loaded R-tree over
// rectangles — the spatial index behind the INLJ (indexed nested-loop
// join) comparison arm the paper's introduction discusses: "An
// alternative is leveraging a spatial index with the Indexed-Nested
// Loop Join (INLJ) operator. However, INLJ works well only when the
// non-indexed set is relatively small."
//
// The tree is built once with the Sort-Tile-Recursive (STR) packing
// algorithm and is immutable afterwards, which is exactly the shape a
// per-query join index needs.
package spindex

import (
	"math"
	"sort"

	"fudj/internal/geo"
)

// Entry is one indexed rectangle with an opaque reference.
type Entry struct {
	MBR geo.Rect
	Ref int
}

// fanout is the maximum children per node; 16 keeps the tree shallow
// while nodes stay cache-friendly.
const fanout = 16

type node struct {
	mbr      geo.Rect
	children []*node
	entries  []Entry // leaf payload; nil for inner nodes
}

// RTree is an immutable STR-packed R-tree.
type RTree struct {
	root *node
	size int
}

// Build bulk-loads an R-tree from entries using STR packing: sort by
// center-x, cut into vertical slabs, sort each slab by center-y, pack
// runs of `fanout` into leaves, then build upper levels the same way.
func Build(entries []Entry) *RTree {
	t := &RTree{size: len(entries)}
	if len(entries) == 0 {
		return t
	}
	leaves := packLeaves(append([]Entry(nil), entries...))
	t.root = packUpper(leaves)
	return t
}

func packLeaves(entries []Entry) []*node {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].MBR.Center().X < entries[j].MBR.Center().X
	})
	nLeaves := (len(entries) + fanout - 1) / fanout
	slabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	perSlab := slabs * fanout

	var leaves []*node
	for start := 0; start < len(entries); start += perSlab {
		end := start + perSlab
		if end > len(entries) {
			end = len(entries)
		}
		slab := entries[start:end]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].MBR.Center().Y < slab[j].MBR.Center().Y
		})
		for ls := 0; ls < len(slab); ls += fanout {
			le := ls + fanout
			if le > len(slab) {
				le = len(slab)
			}
			leaf := &node{entries: slab[ls:le], mbr: geo.EmptyRect()}
			for _, e := range leaf.entries {
				leaf.mbr = leaf.mbr.Union(e.MBR)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packUpper(nodes []*node) *node {
	for len(nodes) > 1 {
		sort.Slice(nodes, func(i, j int) bool {
			return nodes[i].mbr.Center().X < nodes[j].mbr.Center().X
		})
		nParents := (len(nodes) + fanout - 1) / fanout
		slabs := int(math.Ceil(math.Sqrt(float64(nParents))))
		perSlab := slabs * fanout

		var parents []*node
		for start := 0; start < len(nodes); start += perSlab {
			end := start + perSlab
			if end > len(nodes) {
				end = len(nodes)
			}
			slab := nodes[start:end]
			sort.Slice(slab, func(i, j int) bool {
				return slab[i].mbr.Center().Y < slab[j].mbr.Center().Y
			})
			for ls := 0; ls < len(slab); ls += fanout {
				le := ls + fanout
				if le > len(slab) {
					le = len(slab)
				}
				parent := &node{children: slab[ls:le], mbr: geo.EmptyRect()}
				for _, c := range parent.children {
					parent.mbr = parent.mbr.Union(c.mbr)
				}
				parents = append(parents, parent)
			}
		}
		nodes = parents
	}
	return nodes[0]
}

// Size returns the number of indexed entries.
func (t *RTree) Size() int { return t.size }

// Height returns the tree height (0 for an empty tree, 1 for a single
// leaf).
func (t *RTree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if len(n.children) == 0 {
			break
		}
		n = n.children[0]
	}
	return h
}

// Search invokes visit for every indexed entry whose MBR intersects
// query.
func (t *RTree) Search(query geo.Rect, visit func(Entry)) {
	if t.root == nil || query.IsEmpty() {
		return
	}
	search(t.root, query, visit)
}

func search(n *node, query geo.Rect, visit func(Entry)) {
	if !n.mbr.Intersects(query) {
		return
	}
	if n.entries != nil {
		for _, e := range n.entries {
			if e.MBR.Intersects(query) {
				visit(e)
			}
		}
		return
	}
	for _, c := range n.children {
		search(c, query, visit)
	}
}
