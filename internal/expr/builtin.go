package expr

import (
	"fmt"

	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/text"
	"fudj/internal/types"
)

// Builtin is a scalar function over engine values.
type Builtin func(args []types.Value) (types.Value, error)

// builtins is the registry of built-in scalar functions; names are
// lowercase, lookup is case-insensitive at the parser.
var builtins = map[string]Builtin{
	"st_make_point":        stMakePoint,
	"st_contains":          stContains,
	"st_intersects":        stIntersects,
	"st_distance":          stDistance,
	"word_tokens":          wordTokens,
	"similarity_jaccard":   similarityJaccard,
	"interval":             makeInterval,
	"interval_overlapping": intervalOverlapping,
	"abs":                  absFn,
	"len":                  lenFn,
}

// LookupBuiltin finds a built-in scalar function by name.
func LookupBuiltin(name string) (Builtin, bool) {
	f, ok := builtins[name]
	return f, ok
}

// BuiltinNames reports whether a name is a built-in (used by the
// parser to distinguish FUDJ predicates from scalar calls).
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

func wantArgs(name string, args []types.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

func asFloat(name string, v types.Value) (float64, error) {
	f, ok := v.AsFloat()
	if !ok {
		return 0, fmt.Errorf("%s: %v is not numeric", name, v.Kind())
	}
	return f, nil
}

func stMakePoint(args []types.Value) (types.Value, error) {
	if err := wantArgs("st_make_point", args, 2); err != nil {
		return types.Null, err
	}
	x, err := asFloat("st_make_point", args[0])
	if err != nil {
		return types.Null, err
	}
	y, err := asFloat("st_make_point", args[1])
	if err != nil {
		return types.Null, err
	}
	return types.NewPoint(geo.Point{X: x, Y: y}), nil
}

// geometryMBR extracts geometry semantics from a value.
func spatialArg(name string, v types.Value) (types.Value, error) {
	switch v.Kind() {
	case types.KindPoint, types.KindRect, types.KindPolygon, types.KindLineString:
		return v, nil
	}
	return types.Null, fmt.Errorf("%s: %v is not a geometry", name, v.Kind())
}

func stContains(args []types.Value) (types.Value, error) {
	if err := wantArgs("st_contains", args, 2); err != nil {
		return types.Null, err
	}
	outer, err := spatialArg("st_contains", args[0])
	if err != nil {
		return types.Null, err
	}
	inner, err := spatialArg("st_contains", args[1])
	if err != nil {
		return types.Null, err
	}
	switch outer.Kind() {
	case types.KindPolygon:
		switch inner.Kind() {
		case types.KindPoint:
			return types.NewBool(outer.Polygon().ContainsPoint(inner.Point())), nil
		case types.KindRect:
			// Conservative: polygon contains rect if it contains all corners.
			r := inner.Rect()
			p := outer.Polygon()
			ok := p.ContainsPoint(geo.Point{X: r.MinX, Y: r.MinY}) &&
				p.ContainsPoint(geo.Point{X: r.MinX, Y: r.MaxY}) &&
				p.ContainsPoint(geo.Point{X: r.MaxX, Y: r.MinY}) &&
				p.ContainsPoint(geo.Point{X: r.MaxX, Y: r.MaxY})
			return types.NewBool(ok), nil
		}
	case types.KindRect:
		switch inner.Kind() {
		case types.KindPoint:
			return types.NewBool(outer.Rect().ContainsPoint(inner.Point())), nil
		case types.KindRect:
			return types.NewBool(outer.Rect().ContainsRect(inner.Rect())), nil
		case types.KindPolygon:
			return types.NewBool(outer.Rect().ContainsRect(inner.Polygon().MBR())), nil
		}
	}
	return types.Null, fmt.Errorf("st_contains: unsupported pair %v ⊇ %v", outer.Kind(), inner.Kind())
}

func stIntersects(args []types.Value) (types.Value, error) {
	if err := wantArgs("st_intersects", args, 2); err != nil {
		return types.Null, err
	}
	a, err := spatialArg("st_intersects", args[0])
	if err != nil {
		return types.Null, err
	}
	b, err := spatialArg("st_intersects", args[1])
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(ValuesIntersect(a, b)), nil
}

// ValuesIntersect is the exact geometric intersection test between two
// spatial values, dispatching on their kinds. It is used both by the
// st_intersects builtin and by the spatial join verify stage.
func ValuesIntersect(a, b types.Value) bool {
	ag, aok := a.Geometry()
	bg, bok := b.Geometry()
	return aok && bok && geo.Intersects(ag, bg)
}

func stDistance(args []types.Value) (types.Value, error) {
	if err := wantArgs("st_distance", args, 2); err != nil {
		return types.Null, err
	}
	a, err := spatialArg("st_distance", args[0])
	if err != nil {
		return types.Null, err
	}
	b, err := spatialArg("st_distance", args[1])
	if err != nil {
		return types.Null, err
	}
	if a.Kind() == types.KindPoint && b.Kind() == types.KindPoint {
		return types.NewFloat64(a.Point().Distance(b.Point())), nil
	}
	if a.Kind() == types.KindLineString && b.Kind() == types.KindLineString {
		// Exact closest approach between trajectories.
		return types.NewFloat64(a.LineString().Distance(b.LineString())), nil
	}
	am, _ := a.MBR()
	bm, _ := b.MBR()
	return types.NewFloat64(am.Distance(bm)), nil
}

func wordTokens(args []types.Value) (types.Value, error) {
	if err := wantArgs("word_tokens", args, 1); err != nil {
		return types.Null, err
	}
	if args[0].Kind() != types.KindString {
		return types.Null, fmt.Errorf("word_tokens: want string, got %v", args[0].Kind())
	}
	toks := text.Tokenize(args[0].Str())
	vals := make([]types.Value, len(toks))
	for i, tok := range toks {
		vals[i] = types.NewString(tok)
	}
	return types.NewList(vals), nil
}

func tokenList(name string, v types.Value) ([]string, error) {
	switch v.Kind() {
	case types.KindString:
		return text.Tokenize(v.Str()), nil
	case types.KindList:
		list := v.List()
		out := make([]string, len(list))
		for i, e := range list {
			if e.Kind() != types.KindString {
				return nil, fmt.Errorf("%s: list element %d is %v, want string", name, i, e.Kind())
			}
			out[i] = e.Str()
		}
		return out, nil
	}
	return nil, fmt.Errorf("%s: want string or token list, got %v", name, v.Kind())
}

func similarityJaccard(args []types.Value) (types.Value, error) {
	if err := wantArgs("similarity_jaccard", args, 2); err != nil {
		return types.Null, err
	}
	a, err := tokenList("similarity_jaccard", args[0])
	if err != nil {
		return types.Null, err
	}
	b, err := tokenList("similarity_jaccard", args[1])
	if err != nil {
		return types.Null, err
	}
	return types.NewFloat64(text.Jaccard(a, b)), nil
}

func makeInterval(args []types.Value) (types.Value, error) {
	if err := wantArgs("interval", args, 2); err != nil {
		return types.Null, err
	}
	if args[0].Kind() != types.KindInt64 || args[1].Kind() != types.KindInt64 {
		return types.Null, fmt.Errorf("interval: want two int64 ticks")
	}
	iv := interval.Interval{Start: args[0].Int64(), End: args[1].Int64()}
	if !iv.Valid() {
		return types.Null, fmt.Errorf("interval: end %d before start %d", iv.End, iv.Start)
	}
	return types.NewInterval(iv), nil
}

func intervalOverlapping(args []types.Value) (types.Value, error) {
	if err := wantArgs("interval_overlapping", args, 2); err != nil {
		return types.Null, err
	}
	if args[0].Kind() != types.KindInterval || args[1].Kind() != types.KindInterval {
		return types.Null, fmt.Errorf("interval_overlapping: want two intervals, got %v and %v",
			args[0].Kind(), args[1].Kind())
	}
	return types.NewBool(args[0].Interval().Overlaps(args[1].Interval())), nil
}

func absFn(args []types.Value) (types.Value, error) {
	if err := wantArgs("abs", args, 1); err != nil {
		return types.Null, err
	}
	switch args[0].Kind() {
	case types.KindInt64:
		v := args[0].Int64()
		if v < 0 {
			v = -v
		}
		return types.NewInt64(v), nil
	case types.KindFloat64:
		v := args[0].Float64()
		if v < 0 {
			v = -v
		}
		return types.NewFloat64(v), nil
	}
	return types.Null, fmt.Errorf("abs: want numeric, got %v", args[0].Kind())
}

func lenFn(args []types.Value) (types.Value, error) {
	if err := wantArgs("len", args, 1); err != nil {
		return types.Null, err
	}
	switch args[0].Kind() {
	case types.KindString:
		return types.NewInt64(int64(len(args[0].Str()))), nil
	case types.KindList:
		return types.NewInt64(int64(len(args[0].List()))), nil
	}
	return types.Null, fmt.Errorf("len: want string or list, got %v", args[0].Kind())
}
