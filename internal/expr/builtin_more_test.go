package expr

import (
	"testing"

	"fudj/internal/geo"
	"fudj/internal/types"
)

func TestStContainsRectForms(t *testing.T) {
	poly := types.NewPolygon(geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}}))
	rect := types.NewRect(geo.Rect{MinX: 2, MinY: 2, MaxX: 4, MaxY: 4})
	outer := types.NewRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20})
	point := types.NewPoint(geo.Point{X: 3, Y: 3})

	// polygon contains rect (all corners inside).
	if v, err := stContains([]types.Value{poly, rect}); err != nil || !v.Bool() {
		t.Errorf("polygon ⊇ rect = %v, %v", v, err)
	}
	// rect contains point / rect / polygon MBR.
	if v, err := stContains([]types.Value{outer, point}); err != nil || !v.Bool() {
		t.Errorf("rect ⊇ point = %v, %v", v, err)
	}
	if v, err := stContains([]types.Value{outer, rect}); err != nil || !v.Bool() {
		t.Errorf("rect ⊇ rect = %v, %v", v, err)
	}
	if v, err := stContains([]types.Value{outer, poly}); err != nil || !v.Bool() {
		t.Errorf("rect ⊇ polygon = %v, %v", v, err)
	}
	// A point cannot contain a polygon: unsupported pair.
	if _, err := stContains([]types.Value{point, poly}); err == nil {
		t.Error("point ⊇ polygon should be unsupported")
	}
	// Arity errors.
	if _, err := stContains([]types.Value{poly}); err == nil {
		t.Error("st_contains arity should be checked")
	}
}

func TestStDistanceMixedKinds(t *testing.T) {
	poly := types.NewPolygon(geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}))
	far := types.NewPoint(geo.Point{X: 5, Y: 2})
	v, err := stDistance([]types.Value{poly, far})
	if err != nil || v.Float64() != 3 {
		t.Errorf("polygon-point distance = %v, %v (want 3)", v, err)
	}
	if _, err := stDistance([]types.Value{types.NewInt64(1), far}); err == nil {
		t.Error("non-spatial distance should error")
	}
	if _, err := stDistance([]types.Value{far}); err == nil {
		t.Error("arity should be checked")
	}
}

func TestAbsAndLen(t *testing.T) {
	if v, _ := absFn([]types.Value{types.NewFloat64(-2.5)}); v.Float64() != 2.5 {
		t.Errorf("abs(-2.5) = %v", v)
	}
	if v, _ := absFn([]types.Value{types.NewInt64(3)}); v.Int64() != 3 {
		t.Errorf("abs(3) = %v", v)
	}
	if _, err := absFn([]types.Value{types.NewString("x")}); err == nil {
		t.Error("abs of string should error")
	}
	if v, _ := lenFn([]types.Value{types.NewString("abcd")}); v.Int64() != 4 {
		t.Errorf("len(string) = %v", v)
	}
	if v, _ := lenFn([]types.Value{types.NewList([]types.Value{types.Null, types.Null})}); v.Int64() != 2 {
		t.Errorf("len(list) = %v", v)
	}
	if _, err := lenFn([]types.Value{types.NewInt64(1)}); err == nil {
		t.Error("len of int should error")
	}
}

func TestArithmeticCoverage(t *testing.T) {
	cases := []struct {
		op   BinOp
		a, b types.Value
		want types.Value
	}{
		{OpSub, types.NewInt64(5), types.NewInt64(3), types.NewInt64(2)},
		{OpSub, types.NewFloat64(5), types.NewInt64(3), types.NewFloat64(2)},
		{OpMul, types.NewInt64(4), types.NewInt64(3), types.NewInt64(12)},
		{OpDiv, types.NewInt64(7), types.NewInt64(2), types.NewInt64(3)},
		{OpDiv, types.NewFloat64(7), types.NewFloat64(2), types.NewFloat64(3.5)},
		{OpAdd, types.NewFloat64(1), types.NewFloat64(2), types.NewFloat64(3)},
	}
	for _, c := range cases {
		got, err := arith(c.op, c.a, c.b)
		if err != nil || !got.Equal(c.want) {
			t.Errorf("arith(%v, %v, %v) = %v, %v; want %v", c.op, c.a, c.b, got, err, c.want)
		}
	}
	if _, err := arith(OpDiv, types.NewFloat64(1), types.NewFloat64(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if _, err := arith(OpAdd, types.NewString("a"), types.NewInt64(1)); err == nil {
		t.Error("string arithmetic should error")
	}
}

func TestNotAndLiteralWalkString(t *testing.T) {
	n := &Not{E: &Literal{V: types.NewBool(true)}}
	if n.String() != "NOT true" {
		t.Errorf("Not String = %q", n.String())
	}
	visited := 0
	n.Walk(func(Expr) bool { visited++; return true })
	if visited != 2 {
		t.Errorf("Not.Walk visited %d nodes, want 2", visited)
	}
	// Walk stopping early.
	visited = 0
	b := &Binary{Op: OpAnd, L: n, R: n}
	b.Walk(func(Expr) bool { visited++; return false })
	if visited != 1 {
		t.Errorf("early-stop Walk visited %d, want 1", visited)
	}
}

func TestBinOpStringCoverage(t *testing.T) {
	for op, want := range map[BinOp]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpNe: "<>", OpLe: "<=",
	} {
		if op.String() != want {
			t.Errorf("BinOp(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestCompileNotErrors(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "s", Kind: types.KindString})
	ev, err := Compile(&Not{E: &Column{Name: "s"}}, schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev(types.Record{types.NewString("x")}); err == nil {
		t.Error("NOT of string should error at eval time")
	}
}
