package expr

import (
	"strings"
	"testing"

	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "p.id", Kind: types.KindInt64},
		types.Field{Name: "p.name", Kind: types.KindString},
		types.Field{Name: "p.score", Kind: types.KindFloat64},
		types.Field{Name: "w.id", Kind: types.KindInt64},
	)
}

func testRecord() types.Record {
	return types.Record{
		types.NewInt64(7),
		types.NewString("yosemite"),
		types.NewFloat64(2.5),
		types.NewInt64(9),
	}
}

func eval(t *testing.T, e Expr) types.Value {
	t.Helper()
	ev, err := Compile(e, testSchema())
	if err != nil {
		t.Fatalf("compile %v: %v", e, err)
	}
	v, err := ev(testRecord())
	if err != nil {
		t.Fatalf("eval %v: %v", e, err)
	}
	return v
}

func col(q, n string) *Column         { return &Column{Qualifier: q, Name: n} }
func lit(v types.Value) *Literal      { return &Literal{V: v} }
func bin(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

func TestColumnResolution(t *testing.T) {
	if got := eval(t, col("p", "id")); got.Int64() != 7 {
		t.Errorf("p.id = %v", got)
	}
	// Unqualified unique suffix resolves.
	if got := eval(t, col("", "name")); got.Str() != "yosemite" {
		t.Errorf("name = %v", got)
	}
	// Ambiguous unqualified fails at compile time.
	if _, err := Compile(col("", "id"), testSchema()); err == nil {
		t.Error("ambiguous column should fail to compile")
	}
	if _, err := Compile(col("x", "id"), testSchema()); err == nil {
		t.Error("unknown qualifier should fail to compile")
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{bin(OpEq, col("p", "id"), lit(types.NewInt64(7))), true},
		{bin(OpNe, col("p", "id"), col("w", "id")), true},
		{bin(OpLt, col("p", "id"), col("w", "id")), true},
		{bin(OpGe, col("p", "score"), lit(types.NewFloat64(2.5))), true},
		{bin(OpGt, col("p", "score"), lit(types.NewInt64(2))), true}, // numeric widening
		{bin(OpEq, lit(types.NewInt64(1)), lit(types.NewFloat64(1))), true},
		{bin(OpAnd, bin(OpEq, col("p", "id"), lit(types.NewInt64(7))), bin(OpEq, col("w", "id"), lit(types.NewInt64(9)))), true},
		{bin(OpOr, bin(OpEq, col("p", "id"), lit(types.NewInt64(0))), bin(OpEq, col("w", "id"), lit(types.NewInt64(9)))), true},
		{&Not{E: bin(OpEq, col("p", "id"), lit(types.NewInt64(0)))}, true},
		{bin(OpEq, col("p", "name"), lit(types.NewString("zion"))), false},
	}
	for _, c := range cases {
		if got := eval(t, c.e); got.Bool() != c.want {
			t.Errorf("%v = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right side divides by zero; AND must not evaluate it.
	bad := bin(OpEq, bin(OpDiv, lit(types.NewInt64(1)), lit(types.NewInt64(0))), lit(types.NewInt64(1)))
	e := bin(OpAnd, lit(types.NewBool(false)), bad)
	if got := eval(t, e); got.Bool() {
		t.Error("AND false short-circuit failed")
	}
	e2 := bin(OpOr, lit(types.NewBool(true)), bad)
	if got := eval(t, e2); !got.Bool() {
		t.Error("OR true short-circuit failed")
	}
}

func TestArithmetic(t *testing.T) {
	if got := eval(t, bin(OpAdd, lit(types.NewInt64(2)), lit(types.NewInt64(3)))); got.Int64() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := eval(t, bin(OpMul, lit(types.NewFloat64(2)), lit(types.NewInt64(3)))); got.Float64() != 6 {
		t.Errorf("2.0*3 = %v", got)
	}
	ev, err := Compile(bin(OpDiv, lit(types.NewInt64(1)), lit(types.NewInt64(0))), testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev(testRecord()); err == nil {
		t.Error("division by zero should error at eval")
	}
}

func TestSplitAndJoinConjuncts(t *testing.T) {
	a := bin(OpEq, col("p", "id"), lit(types.NewInt64(1)))
	b := bin(OpGt, col("p", "score"), lit(types.NewInt64(0)))
	c := bin(OpNe, col("w", "id"), lit(types.NewInt64(2)))
	tree := bin(OpAnd, bin(OpAnd, a, b), c)
	parts := SplitConjuncts(tree)
	if len(parts) != 3 {
		t.Fatalf("SplitConjuncts = %d parts", len(parts))
	}
	rebuilt := JoinConjuncts(parts)
	if rebuilt.String() != tree.String() {
		t.Errorf("JoinConjuncts = %v, want %v", rebuilt, tree)
	}
	if JoinConjuncts(nil) != nil {
		t.Error("JoinConjuncts(nil) should be nil")
	}
}

func TestColumnsAndQualifiers(t *testing.T) {
	e := bin(OpAnd,
		bin(OpEq, col("p", "id"), col("w", "id")),
		bin(OpGt, col("p", "score"), lit(types.NewInt64(0))))
	cols := Columns(e)
	if len(cols) != 3 {
		t.Fatalf("Columns = %v", cols)
	}
	q := Qualifiers(e)
	if !q["p"] || !q["w"] || len(q) != 2 {
		t.Errorf("Qualifiers = %v", q)
	}
}

func TestCallBuiltin(t *testing.T) {
	e := &Call{Name: "abs", Args: []Expr{lit(types.NewInt64(-4))}}
	if got := eval(t, e); got.Int64() != 4 {
		t.Errorf("abs(-4) = %v", got)
	}
	if _, err := Compile(&Call{Name: "no_such_fn"}, testSchema()); err == nil {
		t.Error("unknown function should fail to compile")
	}
	if !IsBuiltin("st_contains") || IsBuiltin("nope") {
		t.Error("IsBuiltin")
	}
}

func TestSpatialBuiltins(t *testing.T) {
	park := types.NewPolygon(geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}}))
	in := types.NewPoint(geo.Point{X: 5, Y: 5})
	out := types.NewPoint(geo.Point{X: 50, Y: 50})

	v, err := stContains([]types.Value{park, in})
	if err != nil || !v.Bool() {
		t.Errorf("st_contains(park, in) = %v, %v", v, err)
	}
	v, err = stContains([]types.Value{park, out})
	if err != nil || v.Bool() {
		t.Errorf("st_contains(park, out) = %v, %v", v, err)
	}
	v, err = stMakePoint([]types.Value{types.NewFloat64(1), types.NewInt64(2)})
	if err != nil || v.Point() != (geo.Point{X: 1, Y: 2}) {
		t.Errorf("st_make_point = %v, %v", v, err)
	}
	v, err = stDistance([]types.Value{in, out})
	if err != nil || v.Float64() <= 0 {
		t.Errorf("st_distance = %v, %v", v, err)
	}
	v, err = stIntersects([]types.Value{park, types.NewRect(geo.Rect{MinX: 8, MinY: 8, MaxX: 20, MaxY: 20})})
	if err != nil || !v.Bool() {
		t.Errorf("st_intersects = %v, %v", v, err)
	}
	if _, err = stContains([]types.Value{types.NewInt64(1), in}); err == nil {
		t.Error("st_contains on int should error")
	}
}

func TestValuesIntersectDispatch(t *testing.T) {
	poly := types.NewPolygon(geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}}))
	pIn := types.NewPoint(geo.Point{X: 2, Y: 2})
	pOut := types.NewPoint(geo.Point{X: 9, Y: 9})
	r := types.NewRect(geo.Rect{MinX: 3, MinY: 3, MaxX: 5, MaxY: 5})

	if !ValuesIntersect(poly, pIn) || !ValuesIntersect(pIn, poly) {
		t.Error("polygon/point intersect")
	}
	if ValuesIntersect(poly, pOut) {
		t.Error("polygon/far point should not intersect")
	}
	if !ValuesIntersect(poly, r) || !ValuesIntersect(r, poly) {
		t.Error("polygon/rect intersect")
	}
	if !ValuesIntersect(pIn, pIn) {
		t.Error("point self intersect")
	}
	if ValuesIntersect(types.NewInt64(1), pIn) {
		t.Error("non-spatial must not intersect")
	}
}

func TestTextBuiltins(t *testing.T) {
	v, err := wordTokens([]types.Value{types.NewString("Camping River camping")})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.List()) != 2 {
		t.Errorf("word_tokens = %v", v)
	}
	sim, err := similarityJaccard([]types.Value{
		types.NewString("river scenic camping"),
		types.NewString("river camping backpacking"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Float64() != 0.5 {
		t.Errorf("similarity = %v, want 0.5", sim.Float64())
	}
	// Token-list inputs work too (word_tokens composition).
	sim2, err := similarityJaccard([]types.Value{v, v})
	if err != nil || sim2.Float64() != 1 {
		t.Errorf("similarity of identical lists = %v, %v", sim2, err)
	}
}

func TestIntervalBuiltins(t *testing.T) {
	i1, err := makeInterval([]types.Value{types.NewInt64(0), types.NewInt64(10)})
	if err != nil {
		t.Fatal(err)
	}
	i2, err := makeInterval([]types.Value{types.NewInt64(5), types.NewInt64(15)})
	if err != nil {
		t.Fatal(err)
	}
	v, err := intervalOverlapping([]types.Value{i1, i2})
	if err != nil || !v.Bool() {
		t.Errorf("interval_overlapping = %v, %v", v, err)
	}
	if _, err := makeInterval([]types.Value{types.NewInt64(10), types.NewInt64(0)}); err == nil {
		t.Error("inverted interval should error")
	}
	iv := types.NewInterval(interval.Interval{Start: 100, End: 200})
	v, err = intervalOverlapping([]types.Value{i1, iv})
	if err != nil || v.Bool() {
		t.Errorf("disjoint overlap = %v, %v", v, err)
	}
}

func TestExprStrings(t *testing.T) {
	e := bin(OpAnd,
		&Call{Name: "st_contains", Args: []Expr{col("p", "boundary"), col("w", "location")}},
		bin(OpGe, col("w", "start"), lit(types.NewInt64(2022))))
	s := e.String()
	for _, want := range []string{"st_contains(p.boundary, w.location)", "AND", "w.start >= 2022"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
