package expr

import (
	"fmt"
	"strings"

	"fudj/internal/types"
)

// Evaluator computes an expression over one record.
type Evaluator func(rec types.Record) (types.Value, error)

// Compile resolves e against a schema and returns an evaluator. Column
// references resolve first by exact qualified name, then by unique
// unqualified suffix; ambiguity or absence is a compile-time error, as
// in any SQL binder.
func Compile(e Expr, schema *types.Schema) (Evaluator, error) {
	switch n := e.(type) {
	case *Literal:
		v := n.V
		return func(types.Record) (types.Value, error) { return v, nil }, nil

	case *Column:
		idx, err := ResolveColumn(n, schema)
		if err != nil {
			return nil, err
		}
		return func(rec types.Record) (types.Value, error) { return rec[idx], nil }, nil

	case *Not:
		inner, err := Compile(n.E, schema)
		if err != nil {
			return nil, err
		}
		return func(rec types.Record) (types.Value, error) {
			v, err := inner(rec)
			if err != nil {
				return types.Null, err
			}
			if v.Kind() != types.KindBool {
				return types.Null, fmt.Errorf("expr: NOT of %v", v.Kind())
			}
			return types.NewBool(!v.Bool()), nil
		}, nil

	case *Binary:
		l, err := Compile(n.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(n.R, schema)
		if err != nil {
			return nil, err
		}
		return compileBinary(n.Op, l, r)

	case *Call:
		fn, ok := LookupBuiltin(n.Name)
		if !ok {
			return nil, fmt.Errorf("expr: unknown function %q", n.Name)
		}
		args := make([]Evaluator, len(n.Args))
		for i, a := range n.Args {
			ev, err := Compile(a, schema)
			if err != nil {
				return nil, err
			}
			args[i] = ev
		}
		name := n.Name
		return func(rec types.Record) (types.Value, error) {
			vals := make([]types.Value, len(args))
			for i, a := range args {
				v, err := a(rec)
				if err != nil {
					return types.Null, err
				}
				vals[i] = v
			}
			out, err := fn(vals)
			if err != nil {
				return types.Null, fmt.Errorf("expr: %s: %w", name, err)
			}
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("expr: cannot compile %T", e)
}

// ResolveColumn returns the schema index a column reference binds to.
func ResolveColumn(c *Column, schema *types.Schema) (int, error) {
	if c.Qualifier != "" {
		if idx := schema.Index(c.QualifiedName()); idx >= 0 {
			return idx, nil
		}
		return 0, fmt.Errorf("expr: no column %q in %v", c.QualifiedName(), schema)
	}
	// Unqualified: exact name first, then unique ".name" suffix.
	if idx := schema.Index(c.Name); idx >= 0 {
		return idx, nil
	}
	found := -1
	for i, f := range schema.Fields {
		if strings.HasSuffix(f.Name, "."+c.Name) {
			if found >= 0 {
				return 0, fmt.Errorf("expr: ambiguous column %q in %v", c.Name, schema)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("expr: no column %q in %v", c.Name, schema)
	}
	return found, nil
}

func compileBinary(op BinOp, l, r Evaluator) (Evaluator, error) {
	switch op {
	case OpAnd, OpOr:
		isAnd := op == OpAnd
		return func(rec types.Record) (types.Value, error) {
			lv, err := l(rec)
			if err != nil {
				return types.Null, err
			}
			if lv.Kind() != types.KindBool {
				return types.Null, fmt.Errorf("expr: %v operand is %v", op, lv.Kind())
			}
			// Short circuit.
			if isAnd && !lv.Bool() {
				return types.NewBool(false), nil
			}
			if !isAnd && lv.Bool() {
				return types.NewBool(true), nil
			}
			rv, err := r(rec)
			if err != nil {
				return types.Null, err
			}
			if rv.Kind() != types.KindBool {
				return types.Null, fmt.Errorf("expr: %v operand is %v", op, rv.Kind())
			}
			return types.NewBool(rv.Bool()), nil
		}, nil

	case OpEq, OpNe:
		wantEq := op == OpEq
		return func(rec types.Record) (types.Value, error) {
			lv, err := l(rec)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(rec)
			if err != nil {
				return types.Null, err
			}
			eq := valuesEqual(lv, rv)
			return types.NewBool(eq == wantEq), nil
		}, nil

	case OpLt, OpLe, OpGt, OpGe:
		return func(rec types.Record) (types.Value, error) {
			lv, err := l(rec)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(rec)
			if err != nil {
				return types.Null, err
			}
			c, err := compareValues(lv, rv)
			if err != nil {
				return types.Null, err
			}
			var out bool
			switch op {
			case OpLt:
				out = c < 0
			case OpLe:
				out = c <= 0
			case OpGt:
				out = c > 0
			case OpGe:
				out = c >= 0
			}
			return types.NewBool(out), nil
		}, nil

	case OpAdd, OpSub, OpMul, OpDiv:
		return func(rec types.Record) (types.Value, error) {
			lv, err := l(rec)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(rec)
			if err != nil {
				return types.Null, err
			}
			return arith(op, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("expr: unsupported operator %v", op)
}

// valuesEqual compares with numeric widening, so 1 = 1.0 holds as SQL
// users expect.
func valuesEqual(a, b types.Value) bool {
	if a.Kind() != b.Kind() {
		af, aok := a.AsFloat()
		bf, bok := b.AsFloat()
		return aok && bok && af == bf
	}
	return a.Equal(b)
}

func compareValues(a, b types.Value) (int, error) {
	if a.Kind() != b.Kind() {
		af, aok := a.AsFloat()
		bf, bok := b.AsFloat()
		if aok && bok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("expr: cannot compare %v with %v", a.Kind(), b.Kind())
	}
	return a.Compare(b), nil
}

func arith(op BinOp, a, b types.Value) (types.Value, error) {
	if a.Kind() == types.KindInt64 && b.Kind() == types.KindInt64 {
		x, y := a.Int64(), b.Int64()
		switch op {
		case OpAdd:
			return types.NewInt64(x + y), nil
		case OpSub:
			return types.NewInt64(x - y), nil
		case OpMul:
			return types.NewInt64(x * y), nil
		case OpDiv:
			if y == 0 {
				return types.Null, fmt.Errorf("expr: integer division by zero")
			}
			return types.NewInt64(x / y), nil
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return types.Null, fmt.Errorf("expr: arithmetic on %v and %v", a.Kind(), b.Kind())
	}
	switch op {
	case OpAdd:
		return types.NewFloat64(af + bf), nil
	case OpSub:
		return types.NewFloat64(af - bf), nil
	case OpMul:
		return types.NewFloat64(af * bf), nil
	case OpDiv:
		if bf == 0 {
			return types.Null, fmt.Errorf("expr: division by zero")
		}
		return types.NewFloat64(af / bf), nil
	}
	return types.Null, fmt.Errorf("expr: unsupported arithmetic %v", op)
}
