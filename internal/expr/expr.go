// Package expr defines the expression AST shared by the parser, the
// optimizer, and the runtime, together with compilation of expressions
// into evaluators over records and the registry of built-in scalar
// functions (ST_Contains, similarity_jaccard, interval_overlapping, …).
package expr

import (
	"fmt"
	"strings"

	"fudj/internal/types"
)

// Expr is a node of the expression tree.
type Expr interface {
	fmt.Stringer
	// Walk visits the node and its children depth-first, stopping when
	// f returns false.
	Walk(f func(Expr) bool)
}

// Column references a field, optionally qualified by a dataset alias.
type Column struct {
	Qualifier string // alias, may be empty
	Name      string
}

// String implements fmt.Stringer.
func (c *Column) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Walk implements Expr.
func (c *Column) Walk(f func(Expr) bool) { f(c) }

// QualifiedName returns the schema field name this column resolves to.
func (c *Column) QualifiedName() string { return c.String() }

// Literal is a constant value.
type Literal struct {
	V types.Value
}

// String implements fmt.Stringer.
func (l *Literal) String() string { return l.V.String() }

// Walk implements Expr.
func (l *Literal) Walk(f func(Expr) bool) { f(l) }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
}

// String implements fmt.Stringer.
func (op BinOp) String() string { return binOpNames[op] }

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// String implements fmt.Stringer.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Walk implements Expr.
func (b *Binary) Walk(f func(Expr) bool) {
	if f(b) {
		b.L.Walk(f)
		b.R.Walk(f)
	}
}

// Not negates a boolean expression.
type Not struct {
	E Expr
}

// String implements fmt.Stringer.
func (n *Not) String() string { return "NOT " + n.E.String() }

// Walk implements Expr.
func (n *Not) Walk(f func(Expr) bool) {
	if f(n) {
		n.E.Walk(f)
	}
}

// Call invokes a named function. FUDJ predicates appear in the tree as
// Calls whose names resolve to installed joins; the optimizer detects
// them by signature exactly as §VI-C describes.
type Call struct {
	Name string
	Args []Expr
}

// String implements fmt.Stringer.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Walk implements Expr.
func (c *Call) Walk(f func(Expr) bool) {
	if f(c) {
		for _, a := range c.Args {
			a.Walk(f)
		}
	}
}

// SplitConjuncts flattens a tree of ANDs into its conjunct list — the
// first step of predicate pushdown.
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds an AND tree from a conjunct list; nil for an
// empty list.
func JoinConjuncts(cs []Expr) Expr {
	if len(cs) == 0 {
		return nil
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = &Binary{Op: OpAnd, L: out, R: c}
	}
	return out
}

// Columns returns the distinct column references in e, in first-seen
// order.
func Columns(e Expr) []*Column {
	var out []*Column
	seen := map[string]bool{}
	e.Walk(func(n Expr) bool {
		if c, ok := n.(*Column); ok && !seen[c.QualifiedName()] {
			seen[c.QualifiedName()] = true
			out = append(out, c)
		}
		return true
	})
	return out
}

// Qualifiers returns the set of dataset aliases referenced by e.
func Qualifiers(e Expr) map[string]bool {
	out := map[string]bool{}
	for _, c := range Columns(e) {
		if c.Qualifier != "" {
			out[c.Qualifier] = true
		}
	}
	return out
}
