package fudj

import (
	"time"

	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/engine"
	"fudj/internal/sched"
	"fudj/internal/trace"
)

// DB is a database instance: catalog, optimizer, and the simulated
// shared-nothing cluster queries execute on.
type DB = engine.Database

// Option configures a DB. Options are applied in order; the first
// error aborts. Pass them to Open, or to DB.Configure to reconfigure a
// live database between queries (open-only options — the admission
// scheduler, clock, and always-on tracing — are rejected there).
type Option = engine.Option

// ClusterConfig sizes the simulated cluster (nodes × cores per node).
type ClusterConfig = cluster.Config

// Result is the outcome of one executed statement. Counters are
// grouped: Result.Join (operator counters), Result.Cluster (data
// movement and makespan), Result.Faults (injected-fault recovery),
// Result.Memory (budget accounting), and Result.Trace (the span tree
// when tracing was enabled).
type Result = engine.Result

// JoinStats carries operator-level counters for one execution.
type JoinStats = engine.JoinStats

// ClusterStats carries data-movement and makespan counters.
type ClusterStats = engine.ClusterStats

// FaultStats counts fault-injection recoveries.
type FaultStats = engine.FaultStats

// MemoryStats reports memory-budget accounting.
type MemoryStats = engine.MemoryStats

// SchedStats reports one query's admission outcome: time spent in the
// admission queue, the memory lease it ran under, and its priority.
type SchedStats = engine.SchedStats

// SchedulerStats snapshots the whole admission controller (running,
// waiting, totals, lease high-water mark); read it with
// DB.SchedulerStats.
type SchedulerStats = sched.Stats

// Span is one node of an execution trace; Result.Trace is the root.
type Span = trace.Span

// Clock supplies timestamps to the engine; inject a fake for
// deterministic tests via WithClock.
type Clock = trace.Clock

// ExecOption adjusts a single Execute/ExecuteContext call.
type ExecOption = engine.ExecOption

// JoinMode selects how FUDJ predicates execute.
type JoinMode = engine.JoinMode

// Join execution modes.
const (
	// ModeFUDJ generates the FUDJ distributed plan (default).
	ModeFUDJ = engine.ModeFUDJ
	// ModeBuiltin routes FUDJ predicates to hand-built operators
	// registered with DB.RegisterBuiltinJoin.
	ModeBuiltin = engine.ModeBuiltin
)

// BuiltinJoinFunc is the signature of a hand-built distributed join
// operator, the paper's "built-in" comparison arm.
type BuiltinJoinFunc = engine.BuiltinJoinFunc

// FaultConfig describes faults to inject into query executions
// (deterministic and seedable); arm it with WithFaults.
type FaultConfig = cluster.FaultConfig

// RetryPolicy governs task retry, backoff, and straggler speculation;
// override the default with WithRetryPolicy.
type RetryPolicy = cluster.RetryPolicy

// Barrier names a durable phase boundary in the FUDJ pipeline:
// BarrierPlan (after SUMMARIZE broadcasts the plan) or BarrierShuffle
// (after PARTITION delivers every record). Target one with
// FaultConfig.BarrierKills.
type Barrier = cluster.Barrier

// Durable phase barriers.
const (
	BarrierPlan    = cluster.BarrierPlan
	BarrierShuffle = cluster.BarrierShuffle
)

// BarrierKill targets a kill-at-barrier fault at one node.
type BarrierKill = cluster.BarrierKill

// BarrierLossError reports node losses at a phase barrier when no
// checkpoint store is attached; it is retryable (abort-and-rerun).
type BarrierLossError = cluster.BarrierLossError

// FaultError is an injected infrastructure failure (retryable).
type FaultError = cluster.FaultError

// PartitionError tags a task failure with its partition id.
type PartitionError = cluster.PartitionError

// ResourceError reports a query that cannot run within its memory
// budget even after spilling (a single record exceeded the hard cap).
// It is deterministic, so the retry machinery does not re-run it.
type ResourceError = core.ResourceError

// AdmissionError reports a query shed by the admission controller
// instead of executed (queue full, memory pool exhausted, or the DB
// draining). Shedding under load is transient, so the error is
// retryable except when the DB is draining; check the Reason field.
type AdmissionError = sched.AdmissionError

// TimeoutError reports a query aborted by WithQueryTimeout; it wraps
// context.DeadlineExceeded and is not retryable.
type TimeoutError = engine.TimeoutError

// AdmissionReason classifies why the admission controller shed a query.
type AdmissionReason = sched.Reason

// Admission shed reasons (AdmissionError.Reason).
const (
	ReasonQueueFull     = sched.ReasonQueueFull
	ReasonPoolExhausted = sched.ReasonPoolExhausted
	ReasonDraining      = sched.ReasonDraining
	ReasonCanceled      = sched.ReasonCanceled
)

// Priority ranks a query for admission under concurrent load.
type Priority = sched.Priority

// Admission priorities: higher classes get a proportionally larger
// share of admission slots under contention (weighted round-robin
// 4:2:1), never exclusive access.
const (
	PriorityLow    = sched.PriorityLow
	PriorityNormal = sched.PriorityNormal
	PriorityHigh   = sched.PriorityHigh
)

// IsRetryable reports whether an error is transient: re-running the
// same query could succeed. Injected faults, barrier losses, and
// load-shed admissions are retryable; planner errors, timeouts,
// resource errors, and drain refusals are not.
func IsRetryable(err error) bool { return cluster.IsRetryable(err) }

// Open creates a database. With no options it simulates a 4-node ×
// 2-core cluster. Example:
//
//	db, err := fudj.Open(fudj.WithCluster(8, 4), fudj.WithTracing())
func Open(opts ...Option) (*DB, error) { return engine.Open(opts...) }

// MustOpen is Open that panics on error.
func MustOpen(opts ...Option) *DB { return engine.MustOpen(opts...) }

// WithCluster sizes the simulated cluster (nodes × cores per node).
func WithCluster(nodes, coresPerNode int) Option {
	return engine.WithCluster(nodes, coresPerNode)
}

// WithClusterConfig applies a full cluster configuration.
func WithClusterConfig(cfg ClusterConfig) Option { return engine.WithClusterConfig(cfg) }

// WithJoinMode selects how FUDJ predicates execute.
func WithJoinMode(m JoinMode) Option { return engine.WithJoinMode(m) }

// WithSmartTheta toggles the optimizer's theta-join rewrite.
func WithSmartTheta(on bool) Option { return engine.WithSmartTheta(on) }

// WithMemoryBudget caps per-query memory; queries spill past it.
// Zero means unbounded.
func WithMemoryBudget(bytes int64) Option { return engine.WithMemoryBudget(bytes) }

// WithBatchSize caps the rows per columnar frame on the execution hot
// path (shuffle, spill, checkpoints). The default (n <= 0) is 1024
// rows; WithBatchSize(1) selects record-at-a-time framing, the
// pre-batching baseline. Batch counters come back on Result.Join
// (Batches, BatchRows, RowsPerBatch(), PoolReuse()).
func WithBatchSize(n int) Option { return engine.WithBatchSize(n) }

// WithCheckpoints enables durable phase barriers: the broadcast plan
// and every partition's post-shuffle input are checkpointed, so a
// node killed at a barrier recovers in place instead of forcing the
// whole join step to re-run.
func WithCheckpoints() Option { return engine.WithCheckpoints() }

// WithFaults arms deterministic fault injection; nil disables it.
func WithFaults(cfg *FaultConfig) Option { return engine.WithFaults(cfg) }

// WithRetryPolicy overrides task retry, backoff, and speculation.
func WithRetryPolicy(pol RetryPolicy) Option { return engine.WithRetryPolicy(pol) }

// WithTracing enables span collection for every query; each Result
// then carries a Trace tree.
func WithTracing() Option { return engine.WithTracing() }

// WithClock injects the engine's time source (for deterministic
// tests; the default is the wall clock).
func WithClock(c Clock) Option { return engine.WithClock(c) }

// WithConcurrencyLimit caps simultaneously executing queries; beyond
// it, arrivals wait in a bounded priority queue and overflow is shed
// with a retryable *AdmissionError. Zero leaves concurrency unbounded.
func WithConcurrencyLimit(n int) Option { return engine.WithConcurrencyLimit(n) }

// WithQueueDepth bounds the admission queue (default 64 when any
// admission limit is configured).
func WithQueueDepth(n int) Option { return engine.WithQueueDepth(n) }

// WithMemoryPool shares one global memory pool across concurrent
// queries: each admitted query leases its budget from the pool and the
// sum of outstanding leases never exceeds it. Combine with
// WithMemoryBudget to set the per-query request size; under
// contention a query may receive a smaller lease and spill instead of
// failing.
func WithMemoryPool(bytes int64) Option { return engine.WithMemoryPool(bytes) }

// Trace enables span collection for one Execute call:
//
//	res, err := db.ExecuteContext(ctx, sql, fudj.Trace())
func Trace() ExecOption { return engine.Trace() }

// WithQueryTimeout bounds one Execute call: past d the query's context
// is cancelled (aborting cluster exchanges and barrier waits) and the
// call returns a *TimeoutError wrapping context.DeadlineExceeded:
//
//	res, err := db.Execute(sql, fudj.WithQueryTimeout(2*time.Second))
func WithQueryTimeout(d time.Duration) ExecOption { return engine.Timeout(d) }

// WithPriority ranks one Execute call for admission under concurrent
// load (default PriorityNormal):
//
//	res, err := db.Execute(sql, fudj.WithPriority(fudj.PriorityHigh))
func WithPriority(p Priority) ExecOption { return engine.Priority(p) }
