package fudj

import (
	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/engine"
)

// DB is a database instance: catalog, optimizer, and the simulated
// shared-nothing cluster queries execute on.
type DB = engine.Database

// Options configure a DB.
type Options = engine.Options

// ClusterConfig sizes the simulated cluster (nodes × cores per node).
type ClusterConfig = cluster.Config

// Result is the outcome of one executed statement.
type Result = engine.Result

// QueryStats carries operator-level counters for one execution.
type QueryStats = engine.Stats

// JoinMode selects how FUDJ predicates execute.
type JoinMode = engine.JoinMode

// Join execution modes.
const (
	// ModeFUDJ generates the FUDJ distributed plan (default).
	ModeFUDJ = engine.ModeFUDJ
	// ModeBuiltin routes FUDJ predicates to hand-built operators
	// registered with DB.RegisterBuiltinJoin.
	ModeBuiltin = engine.ModeBuiltin
)

// BuiltinJoinFunc is the signature of a hand-built distributed join
// operator, the paper's "built-in" comparison arm.
type BuiltinJoinFunc = engine.BuiltinJoinFunc

// FaultConfig describes faults to inject into query executions
// (deterministic and seedable); arm it with DB.SetFaultConfig.
type FaultConfig = cluster.FaultConfig

// RetryPolicy governs task retry, backoff, and straggler speculation;
// override the default with DB.SetRetryPolicy.
type RetryPolicy = cluster.RetryPolicy

// FaultError is an injected infrastructure failure (retryable).
type FaultError = cluster.FaultError

// PartitionError tags a task failure with its partition id.
type PartitionError = cluster.PartitionError

// ResourceError reports a query that cannot run within its memory
// budget even after spilling (a single record exceeded the hard cap).
// It is deterministic, so the retry machinery does not re-run it.
type ResourceError = core.ResourceError

// Open creates a database.
func Open(opts Options) (*DB, error) { return engine.Open(opts) }

// MustOpen is Open that panics on error.
func MustOpen(opts Options) *DB { return engine.MustOpen(opts) }

// DefaultOptions returns a laptop-scale cluster configuration
// (4 nodes × 2 cores).
func DefaultOptions() Options { return engine.DefaultOptions() }

// OptionsFor returns options for an explicit cluster shape.
func OptionsFor(nodes, coresPerNode int) Options {
	return Options{Cluster: ClusterConfig{Nodes: nodes, CoresPerNode: coresPerNode}}
}
