package fudj_test

import (
	"io"
	"math/rand"
	"testing"
	"time"

	"fudj"
	"fudj/internal/bench"
	"fudj/internal/core"
	"fudj/internal/geo"
	"fudj/internal/joins/spatialjoin"
	"fudj/internal/types"
	"fudj/internal/wire"
)

// Each paper table/figure has a bench that executes its experiment
// runner at bench scale. cmd/benchrunner runs the same experiments at
// full scale with pretty-printed output; EXPERIMENTS.md records both.

// benchConfig is sized so the full -bench=. suite completes in minutes.
func benchConfig() bench.Config {
	return bench.Config{Scale: 0.05, Nodes: 2, Cores: 2, Seed: 42, Budget: 30 * time.Second}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B)        { runExperiment(b, "table1") }
func BenchmarkTable2LOC(b *testing.B)             { runExperiment(b, "table2") }
func BenchmarkFig1Quadrant(b *testing.B)          { runExperiment(b, "fig1") }
func BenchmarkFig9Spatial(b *testing.B)           { runExperiment(b, "fig9a") }
func BenchmarkFig9Interval(b *testing.B)          { runExperiment(b, "fig9b") }
func BenchmarkFig9TextSim(b *testing.B)           { runExperiment(b, "fig9c") }
func BenchmarkFig10Scalability(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11BucketsThreshold(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12aDupTextSim(b *testing.B)      { runExperiment(b, "fig12a") }
func BenchmarkFig12bDupSpatial(b *testing.B)      { runExperiment(b, "fig12b") }
func BenchmarkFig12cPlaneSweep(b *testing.B)      { runExperiment(b, "fig12c") }
func BenchmarkAblationMatchOperator(b *testing.B) { runExperiment(b, "ablation_match") }
func BenchmarkAblationSelfJoin(b *testing.B)      { runExperiment(b, "ablation_selfjoin") }
func BenchmarkAblationDedup(b *testing.B)         { runExperiment(b, "ablation_dedup") }

// --- micro-benchmarks for the remaining DESIGN.md ablations ---

// BenchmarkAblationSerde measures the cost of the FUDJ translation
// layer (Fig. 7 / §VII-B): the proxy's dynamic dispatch plus key
// casting, versus calling the same verify logic natively. The paper
// claims the overhead is minimal (~0 for spatial/interval).
func BenchmarkAblationSerde(b *testing.B) {
	join := spatialjoin.New()
	plan, err := join.Divide(
		geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		[]any{int64(16)})
	if err != nil {
		b.Fatal(err)
	}
	l := geo.Geometry(geo.Point{X: 10, Y: 10})
	r := geo.Geometry(geo.Point{X: 10, Y: 10})

	b.Run("through-translation-layer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !join.Verify(0, l, 0, r, plan) {
				b.Fatal("verify failed")
			}
		}
	})
	b.Run("native-call", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !geo.Intersects(l, r) {
				b.Fatal("verify failed")
			}
		}
	})
}

// BenchmarkAblationTwoStepAgg compares the distributed two-step
// (local + global) summary aggregation against a hypothetical
// single-step pass over all data, isolating the merge overhead the
// SUMMARIZE design pays for parallelism.
func BenchmarkAblationTwoStepAgg(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, parts = 100000, 8
	keys := make([]geo.Geometry, n)
	for i := range keys {
		keys[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	join := spatialjoin.New()

	b.Run("two-step", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			locals := make([]core.Summary, parts)
			for p := 0; p < parts; p++ {
				s := join.NewSummary(core.Left)
				for j := p; j < n; j += parts {
					s = join.LocalAggregate(core.Left, keys[j], s)
				}
				locals[p] = s
			}
			global := join.NewSummary(core.Left)
			for _, s := range locals {
				global = join.GlobalAggregate(core.Left, global, s)
			}
		}
	})
	b.Run("one-step", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := join.NewSummary(core.Left)
			for j := 0; j < n; j++ {
				s = join.LocalAggregate(core.Left, keys[j], s)
			}
		}
	})
}

// BenchmarkPlaneSweepVsNested isolates the §VII-F local-join question:
// plane-sweep versus nested-loop candidate generation inside one tile.
func BenchmarkPlaneSweepVsNested(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) []geo.SweepItem {
		items := make([]geo.SweepItem, n)
		for i := range items {
			x, y := rng.Float64()*100, rng.Float64()*100
			items[i] = geo.SweepItem{
				MBR: geo.Rect{MinX: x, MinY: y, MaxX: x + 2, MaxY: y + 2},
				Ref: i,
			}
		}
		return items
	}
	left, right := mk(2000), mk(2000)
	sink := 0
	b.Run("plane-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := append([]geo.SweepItem(nil), left...)
			r := append([]geo.SweepItem(nil), right...)
			geo.PlaneSweepJoin(l, r, func(int, int) { sink++ })
		}
	})
	b.Run("nested-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			geo.NestedLoopJoin(left, right, func(int, int) { sink++ })
		}
	})
	_ = sink
}

// BenchmarkStateCodecs compares the wire fast path against the gob
// fallback for summary transfer — why the reference joins implement
// wire.Marshaler on their states.
func BenchmarkStateCodecs(b *testing.B) {
	wireJoin := spatialjoin.New() // geo.Rect summary: wire fast path
	sum := geo.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}
	b.Run("wire", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := wireJoin.EncodeSummary(sum)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := wireJoin.DecodeSummary(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	gobJoin := core.Wrap(core.Spec[int64, int64, map[string]int64, int64]{
		Name:         "gob_state",
		NewSummary:   func() map[string]int64 { return map[string]int64{} },
		LocalAggLeft: func(k int64, s map[string]int64) map[string]int64 { return s },
		GlobalAgg:    func(a, b map[string]int64) map[string]int64 { return a },
		Divide:       func(a, b map[string]int64, _ []any) (int64, error) { return 0, nil },
		AssignLeft:   func(int64, int64, []core.BucketID) []core.BucketID { return nil },
		Verify:       func(core.BucketID, int64, core.BucketID, int64, int64) bool { return true },
	})
	gobSum := map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4}
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := gobJoin.EncodeSummary(gobSum)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gobJoin.DecodeSummary(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecordWire measures tuple serialization, the per-record cost
// every cross-node exchange pays.
func BenchmarkRecordWire(b *testing.B) {
	rec := types.Record{
		types.NewInt64(42),
		types.NewString("river scenic camping trail"),
		types.NewPoint(geo.Point{X: 1.5, Y: 2.5}),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := wire.NewEncoder(64)
		rec.MarshalWire(e)
		if _, err := types.DecodeRecord(wire.NewDecoder(e.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSpatialQuery measures a whole FUDJ query through the
// engine, the number most comparable to the paper's per-query timings.
func BenchmarkEndToEndSpatialQuery(b *testing.B) {
	db := fudj.MustOpen(fudj.WithCluster(2, 2))
	if err := fudj.LoadGenerated(db, "parks", fudj.GenParks(1, 1000)); err != nil {
		b.Fatal(err)
	}
	if err := fudj.LoadGenerated(db, "wildfires", fudj.GenWildfires(2, 2000)); err != nil {
		b.Fatal(err)
	}
	if err := db.InstallLibrary(fudj.SpatialLibrary()); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int)
		RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`); err != nil {
		b.Fatal(err)
	}
	q := `SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 32)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracingOverhead guards the observability layer's cost: the
// spatial join with tracing disabled (nil-span fast path) versus
// per-query fudj.Trace(). The disabled path must stay within 5% of the
// pre-trace baseline; results/BENCH_trace.json records a measured run.
func BenchmarkTracingOverhead(b *testing.B) {
	db := fudj.MustOpen(fudj.WithCluster(2, 2))
	if err := fudj.LoadGenerated(db, "parks", fudj.GenParks(1, 1000)); err != nil {
		b.Fatal(err)
	}
	if err := fudj.LoadGenerated(db, "wildfires", fudj.GenWildfires(2, 2000)); err != nil {
		b.Fatal(err)
	}
	if err := db.InstallLibrary(fudj.SpatialLibrary()); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int)
		RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`); err != nil {
		b.Fatal(err)
	}
	q := `SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 32)`
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Execute(q, fudj.Trace()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sanity check that the bench-scale experiments produce output when run
// verbosely (kept here so `go test .` exercises the harness wiring).
func TestBenchHarnessSmoke(t *testing.T) {
	cfg := benchConfig()
	cfg.Scale = 0.01
	var sink countingWriter
	if err := bench.Run("table2", cfg, &sink); err != nil {
		t.Fatal(err)
	}
	if sink == 0 {
		t.Error("no output from harness")
	}
}

type countingWriter int

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}

// BenchmarkAblationTheta compares the naive broadcast theta against the
// balanced bucket-pair operator (the future-work Theta Join Operator).
func BenchmarkAblationTheta(b *testing.B) { runExperiment(b, "ablation_theta") }

// BenchmarkAblationAutotune compares auto-derived bucket counts against
// a manual sweep (the §VIII future-work automation).
func BenchmarkAblationAutotune(b *testing.B) { runExperiment(b, "ablation_autotune") }

// BenchmarkExtraTrajectory and BenchmarkExtraDistance cover the two
// libraries beyond the paper's three.
func BenchmarkExtraTrajectory(b *testing.B) { runExperiment(b, "extra_traj") }
func BenchmarkExtraDistance(b *testing.B)   { runExperiment(b, "extra_distance") }

// BenchmarkExtraPhases measures the FUDJ phase breakdown per join type.
func BenchmarkExtraPhases(b *testing.B) { runExperiment(b, "extra_phases") }

// BenchmarkExtraINLJ compares the introduction's four implementation
// approaches on the spatial join.
func BenchmarkExtraINLJ(b *testing.B) { runExperiment(b, "extra_inlj") }
