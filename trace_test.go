package fudj_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"fudj"
	"fudj/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// traceEnv opens a deterministic database: fixed seeds, small datasets,
// the three reference joins, and a fake clock so the whole stack runs
// off injected time.
func traceEnv(t *testing.T) *fudj.DB {
	t.Helper()
	db, err := fudj.Open(
		fudj.WithCluster(4, 2),
		fudj.WithClock(trace.NewFakeClock(time.Unix(1700000000, 0), time.Millisecond)),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, lib := range []*fudj.Library{
		fudj.SpatialLibrary(), fudj.TextSimilarityLibrary(), fudj.IntervalLibrary(),
	} {
		if err := db.InstallLibrary(lib); err != nil {
			t.Fatal(err)
		}
	}
	for name, ds := range map[string]*fudj.GeneratedDataset{
		"parks":        fudj.GenParks(1, 120),
		"wildfires":    fudj.GenWildfires(2, 240),
		"nyctaxi":      fudj.GenNYCTaxi(3, 200),
		"amazonreview": fudj.GenAmazonReview(4, 200),
	} {
		if err := fudj.LoadGenerated(db, name, ds); err != nil {
			t.Fatal(err)
		}
	}
	for _, ddl := range []string{
		`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`,
		`CREATE JOIN text_similarity_join(a: string, b: string, t: double) RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins`,
		`CREATE JOIN overlapping_interval(a: interval, b: interval, n: int) RETURNS boolean AS "oip.IntervalJoin" AT intervaljoins`,
	} {
		if _, err := db.Execute(ddl); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// exampleQueries are the paper's three reference joins.
var exampleQueries = map[string]string{
	"spatial": `SELECT COUNT(*) FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 16)`,
	"interval": `SELECT COUNT(*) FROM nyctaxi a, nyctaxi b
		WHERE a.vendor = 1 AND b.vendor = 2
		AND overlapping_interval(a.ride_interval, b.ride_interval, 500)`,
	"textsim": `SELECT COUNT(*) FROM amazonreview a, amazonreview b
		WHERE a.overall = 5 AND b.overall = 4
		AND text_similarity_join(a.review, b.review, 0.8)`,
}

var (
	durRe  = regexp.MustCompile(`(time|max|total)=[0-9.]+(s|ms|µs)`)
	busyRe = regexp.MustCompile(`busy\.ns=[0-9]+`)
)

// scrub replaces wall-time values, which vary run to run even under a
// fake clock (goroutine interleavings decide which tick a task sees),
// with placeholders. Row, byte, and task counts are deterministic and
// survive verbatim.
func scrub(s string) string {
	s = durRe.ReplaceAllString(s, "$1=<dur>")
	s = busyRe.ReplaceAllString(s, "busy.ns=<n>")
	return s
}

// TestExplainAnalyzeGolden runs EXPLAIN ANALYZE over all three example
// joins and compares the rendered plans, with durations scrubbed,
// against golden files. Regenerate with: go test -run Golden -update .
func TestExplainAnalyzeGolden(t *testing.T) {
	db := traceEnv(t)
	for name, q := range exampleQueries {
		t.Run(name, func(t *testing.T) {
			res, err := db.Execute("EXPLAIN ANALYZE " + q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("EXPLAIN ANALYZE returned no rows")
			}
			var lines []string
			for _, row := range res.Rows {
				lines = append(lines, scrub(row[0].Str()))
			}
			got := strings.Join(lines, "\n") + "\n"

			golden := filepath.Join("testdata", "explain_analyze_"+name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN ANALYZE mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestExplainAnalyzePhases asserts the acceptance contract directly:
// each example join's plan shows all three phases with a time and at
// least one rows/bytes counter per phase.
func TestExplainAnalyzePhases(t *testing.T) {
	db := traceEnv(t)
	for name, q := range exampleQueries {
		t.Run(name, func(t *testing.T) {
			res, err := db.Execute("EXPLAIN ANALYZE " + q)
			if err != nil {
				t.Fatal(err)
			}
			var text strings.Builder
			for _, row := range res.Rows {
				text.WriteString(row[0].Str())
				text.WriteByte('\n')
			}
			plan := text.String()
			for _, phase := range []string{"SUMMARIZE", "PARTITION", "COMBINE"} {
				re := regexp.MustCompile(phase + ` time=[0-9.]+(s|ms|µs) .*(rows\.|bytes)`)
				if !re.MatchString(plan) {
					t.Errorf("phase %s missing time or rows/bytes counters:\n%s", phase, plan)
				}
			}
			if !strings.Contains(plan, "shuffle.bytes=") {
				t.Errorf("plan missing shuffle bytes:\n%s", plan)
			}
		})
	}
}

// TestResultTrace covers the per-query opt-in: no trace by default, a
// finished span tree with fudj.Trace(), and a loadable Chrome export.
func TestResultTrace(t *testing.T) {
	db := traceEnv(t)
	q := exampleQueries["spatial"]

	plain, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced query carries a span tree")
	}

	traced, err := db.Execute(q, fudj.Trace())
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatal("fudj.Trace() produced no span tree")
	}
	if traced.Trace.Name() != "query" || traced.Trace.Duration() <= 0 {
		t.Fatalf("root span bad: name=%q dur=%v", traced.Trace.Name(), traced.Trace.Duration())
	}
	if len(plain.Rows) != len(traced.Rows) {
		t.Fatalf("tracing changed results: %d vs %d rows", len(plain.Rows), len(traced.Rows))
	}

	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, traced.Trace); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	if len(events) < 5 {
		t.Fatalf("chrome export suspiciously small: %d events", len(events))
	}
}

// TestMetricsValues checks Result.Metrics, the flat named-counter view
// of the unified registry.
func TestMetricsValues(t *testing.T) {
	db := traceEnv(t)
	res, err := db.Execute(exampleQueries["spatial"])
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"shuffle.bytes", "shuffle.records", "tasks",
		"join.candidates", "join.verified", "task.busy.count",
	} {
		if _, ok := res.Metrics[key]; !ok {
			t.Errorf("Result.Metrics missing %q (have %d keys)", key, len(res.Metrics))
		}
	}
	if res.Metrics["shuffle.bytes"] != res.Cluster.BytesShuffled {
		t.Errorf("registry and snapshot disagree: %d vs %d",
			res.Metrics["shuffle.bytes"], res.Cluster.BytesShuffled)
	}
	if res.Metrics["join.candidates"] != res.Join.Candidates {
		t.Errorf("join.candidates %d != %d", res.Metrics["join.candidates"], res.Join.Candidates)
	}
}
