# Build, verify, and chaos-test the FUDJ reproduction.

GO ?= go

# Pinned external linter versions (installed in CI; local runs skip
# them gracefully when the tools are absent).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

FUDJVET = bin/fudjvet

.PHONY: all vet fudjvet build test race chaos chaos-recovery stress serve-chaos serve-ha bench-batch bench-serve-ha fuzz staticcheck govulncheck lint-fix-check ci

all: build

# vet runs the standard analyzers plus fudjvet, the repo's own
# invariant suite (determinism, UDF isolation, bounded allocation,
# context plumbing, side symmetry) via the go vet -vettool protocol,
# then the standalone driver with the suppression-ratchet budget: live
# //fudjvet:ignore counts may not exceed testdata/fudjvet_budget.txt.
vet: fudjvet
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(FUDJVET)) ./...
	$(FUDJVET) -budget testdata/fudjvet_budget.txt ./...

fudjvet:
	$(GO) build -o $(FUDJVET) ./cmd/fudjvet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the degraded-execution suite under the race detector:
# deterministic fault injection (crashes, a straggler node, shuffle
# corruption), cancellation/deadline handling, UDF panic isolation,
# and memory-bounded execution (spill, backpressure, skew splits).
chaos:
	$(GO) test -race -run 'Chaos|Fault|Retry|Straggler|Corrupt|Deadline|Cancel|UDFPanic|StandalonePanic|Bounded|Memory|Spill|ResourceError|BucketSplit|Backpressure' \
		./internal/cluster/ ./internal/core/ ./internal/engine/ ./internal/storage/ \
		./internal/joins/spatialjoin/ ./internal/joins/textsim/ ./internal/joins/intervaljoin/

# chaos-recovery runs the checkpointed-execution matrix under the race
# detector: kill-at-barrier over both barriers and every example join,
# torn-write and checkpoint-corruption healing, checkpoint reopen
# crash-consistency, and the temp-file sweep — every run asserting
# multiset-identical results against a fault-free baseline.
chaos-recovery:
	$(GO) test -race -run 'CheckpointRecovery|KillAtBarrier|TornWrite|CheckpointCorrupt|Recovery|BarrierMatrix|Checkpoint' \
		./internal/cluster/ ./internal/storage/ ./internal/engine/ \
		./internal/joins/spatialjoin/ ./internal/joins/textsim/ ./internal/joins/intervaljoin/

# stress runs the admission-controlled scheduler suite under the race
# detector: the seeded open-loop storm (hundreds of mixed joins against
# a small shared memory pool, with a panicking-UDF arm and a fault-
# injection arm), the scheduler unit invariants, lease accounting,
# timeout classification, drain semantics, and the concurrent-Execute
# safety audit.
stress:
	$(GO) test -race -run 'Stress|Sched|Admission|Lease|Drain|Timeout|Priority|ConcurrentExecute|SmartThetaConcurrent|SmartThetaBarrierLoss' \
		./internal/sched/ ./internal/engine/ ./internal/bench/

# serve-chaos runs the network serving suite under the race detector:
# the frame protocol (CRC corruption, truncation, oversize), the error
# envelope taxonomy round-trip, session replay/expiry, the full
# client/server integration tests, the seeded network chaos
# convergence run (accept refusal, mid-response resets, byte
# corruption, stalls), daemon drain under open-loop load, the
# drain-vs-recovery race, and the through-the-wire stress storm.
serve-chaos:
	$(GO) test -race -run 'Serve|Frame|Session|Envelope|Taxonomy|Shed|RemoteError|DrainRaces|DrainCancels|StressOverNetwork' \
		./internal/serve/ ./internal/serve/client/ ./internal/engine/ ./internal/bench/

# serve-ha runs the multi-instance failover suite under the race
# detector: the rolling-restart chaos storm (three restartable fudjd
# instances behind a failover pool, each drained and restarted in turn
# under the seeded fault-injecting listener, then a full-cluster hard
# restart — zero client-visible failures, multiset-identical results,
# exec-at-most-once per instance, breaker open/close, empty TMPDIR),
# the deterministic drain-failover and instance-mismatch re-key tests,
# the health/readiness probes, and the pool/breaker/backoff/journal
# unit suites.
serve-ha:
	$(GO) test -race -run 'ServeHA|Pool|Breaker|Backoff|Ready|Instance|Journal|Replay|Expiry' \
		./internal/serve/ ./internal/serve/client/

# bench-batch runs the hash-path COMBINE microbench — batched columnar
# shuffle frames against record-at-a-time framing — and records the
# measurement in results/BENCH_batch.json. The experiment fails below a
# 1.2x regression floor (the committed artifact records the >=2x
# target; the floor is looser so noisy CI neighbors don't flake it).
bench-batch:
	$(GO) run ./cmd/benchrunner -exp batch -json results/BENCH_batch.json

# bench-serve-ha runs the client-side failover experiment — steady
# closed-loop latency vs the first query after the serving instance
# drains — and records results/BENCH_serve_ha.json. The experiment
# fails if every query did not succeed, or if no drain failover /
# re-key was recorded (i.e. the failover arm measured a healthy pair).
bench-serve-ha:
	$(GO) run ./cmd/benchrunner -exp serve-ha -json results/BENCH_serve_ha.json

# fuzz smoke-runs every native fuzz target briefly. The committed
# corpora under testdata/fuzz/ also run as regression seeds in plain
# `go test`, so CI covers them even without this target.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeRecords -fuzztime $(FUZZTIME) ./internal/types/
	$(GO) test -run xxx -fuzz FuzzMemSize -fuzztime $(FUZZTIME) ./internal/types/
	$(GO) test -run xxx -fuzz FuzzDecodeBatch -fuzztime $(FUZZTIME) ./internal/types/
	$(GO) test -run xxx -fuzz FuzzDecoder -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzUvarintCountBound -fuzztime $(FUZZTIME) ./internal/wire/

# staticcheck and govulncheck are external tools pinned by version in
# CI; locally they run only if already installed (the build environment
# deliberately carries no third-party modules).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI pins $(GOVULNCHECK_VERSION))"; \
	fi

# lint-fix-check fails if the tree needs gofmt, or if the fudjvet suite
# reports any finding — the no-drift gate CI runs on a clean checkout.
lint-fix-check: fudjvet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet -vettool=$(abspath $(FUDJVET)) ./...
	$(FUDJVET) -budget testdata/fudjvet_budget.txt ./...

ci: vet build race chaos chaos-recovery staticcheck govulncheck
