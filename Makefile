# Build, verify, and chaos-test the FUDJ reproduction.

GO ?= go

.PHONY: all vet build test race chaos ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the fault-tolerance suite under the race detector:
# deterministic fault injection (crashes, a straggler node, shuffle
# corruption), cancellation/deadline handling, and UDF panic isolation.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Retry|Straggler|Corrupt|Deadline|Cancel|UDFPanic|StandalonePanic' \
		./internal/cluster/ ./internal/core/ ./internal/engine/ \
		./internal/joins/spatialjoin/ ./internal/joins/textsim/ ./internal/joins/intervaljoin/

ci: vet build race chaos
