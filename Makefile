# Build, verify, and chaos-test the FUDJ reproduction.

GO ?= go

.PHONY: all vet build test race chaos fuzz ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the degraded-execution suite under the race detector:
# deterministic fault injection (crashes, a straggler node, shuffle
# corruption), cancellation/deadline handling, UDF panic isolation,
# and memory-bounded execution (spill, backpressure, skew splits).
chaos:
	$(GO) test -race -run 'Chaos|Fault|Retry|Straggler|Corrupt|Deadline|Cancel|UDFPanic|StandalonePanic|Bounded|Memory|Spill|ResourceError|BucketSplit|Backpressure' \
		./internal/cluster/ ./internal/core/ ./internal/engine/ ./internal/storage/ \
		./internal/joins/spatialjoin/ ./internal/joins/textsim/ ./internal/joins/intervaljoin/

# fuzz smoke-runs every native fuzz target briefly. The committed
# corpora under testdata/fuzz/ also run as regression seeds in plain
# `go test`, so CI covers them even without this target.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeRecords -fuzztime $(FUZZTIME) ./internal/types/
	$(GO) test -run xxx -fuzz FuzzMemSize -fuzztime $(FUZZTIME) ./internal/types/
	$(GO) test -run xxx -fuzz FuzzDecoder -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzUvarintCountBound -fuzztime $(FUZZTIME) ./internal/wire/

ci: vet build race chaos
