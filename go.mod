module fudj

go 1.24
