// Package fudj_test exercises the library strictly through its public
// API, as an adopting application would.
package fudj_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"fudj"
)

// rangeJoin defines a brand-new FUDJ through the public API: a 1-D
// overlap join over [2]int64 ranges (the quickstart example's join).
func rangeJoin() fudj.Join {
	type summary struct{ Min, Max int64 }
	type plan struct {
		Min, Width int64
		N          int
	}
	bucket := func(p plan, v int64) int {
		b := int((v - p.Min) / p.Width)
		if b < 0 {
			b = 0
		}
		if b >= p.N {
			b = p.N - 1
		}
		return b
	}
	return fudj.Wrap(fudj.Spec[[2]int64, [2]int64, summary, plan]{
		Name:       "range_overlap",
		Params:     1,
		Dedup:      fudj.DedupAvoidance,
		NewSummary: func() summary { return summary{Min: 1 << 62, Max: -(1 << 62)} },
		LocalAggLeft: func(k [2]int64, s summary) summary {
			if k[0] < s.Min {
				s.Min = k[0]
			}
			if k[1] > s.Max {
				s.Max = k[1]
			}
			return s
		},
		GlobalAgg: func(a, b summary) summary {
			if b.Min < a.Min {
				a.Min = b.Min
			}
			if b.Max > a.Max {
				a.Max = b.Max
			}
			return a
		},
		Divide: func(l, r summary, params []any) (plan, error) {
			n, ok := params[0].(int64)
			if !ok || n < 1 {
				return plan{}, fmt.Errorf("range_overlap: bad bucket count %v", params[0])
			}
			min, max := l.Min, l.Max
			if r.Min < min {
				min = r.Min
			}
			if r.Max > max {
				max = r.Max
			}
			w := (max - min + 1) / n
			if w < 1 {
				w = 1
			}
			return plan{Min: min, Width: w, N: int(n)}, nil
		},
		AssignLeft: func(k [2]int64, p plan, dst []fudj.BucketID) []fudj.BucketID {
			for b := bucket(p, k[0]); b <= bucket(p, k[1]); b++ {
				dst = append(dst, b)
			}
			return dst
		},
		Verify: func(_ fudj.BucketID, l [2]int64, _ fudj.BucketID, r [2]int64, _ plan) bool {
			return l[0] <= r[1] && l[1] >= r[0]
		},
	})
}

func TestPublicStandalone(t *testing.T) {
	j := rangeJoin()
	left := []any{[2]int64{0, 10}, [2]int64{20, 30}}
	right := []any{[2]int64{5, 25}, [2]int64{100, 110}}
	var pairs int
	stats, err := fudj.RunStandalone(j, left, right, []any{int64(4)}, func(l, r any) { pairs++ })
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 2 || stats.Results != 2 {
		t.Errorf("pairs = %d, stats = %v", pairs, stats)
	}
}

func TestPublicEndToEnd(t *testing.T) {
	db := fudj.MustOpen(fudj.WithCluster(2, 2))

	// Generate and load the synthetic datasets.
	parks := fudj.GenParks(1, 300)
	fires := fudj.GenWildfires(2, 600)
	if err := fudj.LoadGenerated(db, "parks", parks); err != nil {
		t.Fatal(err)
	}
	if err := fudj.LoadGenerated(db, "wildfires", fires); err != nil {
		t.Fatal(err)
	}

	// Install the shipped spatial library and create the join.
	if err := db.InstallLibrary(fudj.SpatialLibrary()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int)
		RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`); err != nil {
		t.Fatal(err)
	}

	res, err := db.Execute(`
		SELECT p.id, COUNT(w.id) AS num_fires
		FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 16)
		GROUP BY p.id ORDER BY num_fires DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no results")
	}
	ontop, err := db.Execute(`
		SELECT p.id, COUNT(w.id) AS num_fires
		FROM parks p, wildfires w
		WHERE st_intersects(p.boundary, w.location)
		GROUP BY p.id ORDER BY num_fires DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fmt.Sprint(res.Rows), fmt.Sprint(ontop.Rows)
	// Row sets must agree up to ties in the sort; compare sorted strings.
	as := make([]string, len(res.Rows))
	bs := make([]string, len(ontop.Rows))
	for i := range res.Rows {
		as[i] = res.Rows[i].String()
	}
	for i := range ontop.Rows {
		bs[i] = ontop.Rows[i].String()
	}
	sort.Strings(as)
	sort.Strings(bs)
	if fmt.Sprint(as) != fmt.Sprint(bs) {
		t.Errorf("FUDJ and on-top disagree:\n%s\n%s", a, b)
	}
}

func TestPublicCustomJoinInEngine(t *testing.T) {
	db := fudj.MustOpen(fudj.WithCluster(2, 1))

	// A dataset of [start,end] ranges carried as intervals.
	schema := fudj.NewSchema(
		fudj.Field{Name: "id", Kind: fudj.KindInt64},
		fudj.Field{Name: "lo", Kind: fudj.KindInt64},
		fudj.Field{Name: "hi", Kind: fudj.KindInt64},
		fudj.Field{Name: "span", Kind: fudj.KindInterval},
	)
	var recs []fudj.Record
	for i := int64(0); i < 50; i++ {
		lo := (i * 37) % 500
		hi := lo + 20
		recs = append(recs, fudj.Record{
			fudj.NewInt64(i), fudj.NewInt64(lo), fudj.NewInt64(hi),
			fudj.NewIntervalValue(fudj.Interval{Start: lo, End: hi}),
		})
	}
	if err := db.CreateDataset("ranges", schema, recs); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallLibrary(fudj.IntervalLibrary()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN overlaps(a: interval, b: interval, n: int)
		RETURNS boolean AS "oip.IntervalJoin" AT intervaljoins`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(`SELECT COUNT(*) FROM ranges a, ranges b WHERE overlaps(a.span, b.span, 8)`)
	if err != nil {
		t.Fatal(err)
	}
	ontop, err := db.Execute(`SELECT COUNT(*) FROM ranges a, ranges b WHERE interval_overlapping(a.span, b.span)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int64() != ontop.Rows[0][0].Int64() {
		t.Errorf("FUDJ %v != on-top %v", res.Rows[0][0], ontop.Rows[0][0])
	}
	if res.Rows[0][0].Int64() < 50 {
		t.Errorf("self overlap count %v too small", res.Rows[0][0])
	}
}

func TestPublicBuiltins(t *testing.T) {
	db := fudj.MustOpen(fudj.WithCluster(2, 1))
	if err := fudj.LoadGenerated(db, "parks", fudj.GenParks(3, 40)); err != nil {
		t.Fatal(err)
	}
	if err := fudj.LoadGenerated(db, "wildfires", fudj.GenWildfires(4, 100)); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallLibrary(fudj.SpatialLibrary()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int)
		RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`); err != nil {
		t.Fatal(err)
	}
	db.RegisterBuiltinJoin("spatial_join", fudj.BuiltinSpatialPlaneSweep)
	q := `SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 16)`

	fudjCount := mustCount(t, db, q)
	db.SetJoinMode(fudj.ModeBuiltin)
	builtinCount := mustCount(t, db, q)
	if fudjCount != builtinCount {
		t.Errorf("FUDJ %d != builtin plane-sweep %d", fudjCount, builtinCount)
	}
}

// TestPublicTrajectoryJoin runs the fifth shipped library end to end:
// the trajectory closeness FUDJ against its on-top st_distance
// formulation.
func TestPublicTrajectoryJoin(t *testing.T) {
	db := fudj.MustOpen(fudj.WithCluster(2, 2))
	if err := fudj.LoadGenerated(db, "trips", fudj.GenTrajectories(41, 250)); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallLibrary(fudj.TrajectoryLibrary()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN traj_close(a: linestring, b: linestring, n: int, d: double)
		RETURNS boolean AS "traj.ClosenessJoin" AT trajjoins`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT a.id, b.id FROM trips a, trips b
		WHERE a.class = 1 AND b.class = 2 AND traj_close(a.route, b.route, 16, 3.0)`
	onTop := `SELECT a.id, b.id FROM trips a, trips b
		WHERE a.class = 1 AND b.class = 2 AND st_distance(a.route, b.route) <= 3.0`
	res, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.Execute(onTop)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("trajectory join found nothing; data too sparse")
	}
	as := make([]string, len(res.Rows))
	bs := make([]string, len(ref.Rows))
	for i := range res.Rows {
		as[i] = res.Rows[i].String()
	}
	for i := range ref.Rows {
		bs[i] = ref.Rows[i].String()
	}
	sort.Strings(as)
	sort.Strings(bs)
	if fmt.Sprint(as) != fmt.Sprint(bs) {
		t.Fatalf("trajectory FUDJ (%d rows) != on-top (%d rows)", len(as), len(bs))
	}
	if res.Join.Candidates >= ref.Join.Candidates {
		t.Errorf("FUDJ candidates %d >= on-top %d", res.Join.Candidates, ref.Join.Candidates)
	}
}

func TestPublicStorageRoundTrip(t *testing.T) {
	db := fudj.MustOpen(fudj.WithCluster(1, 2))
	if err := fudj.LoadGenerated(db, "parks", fudj.GenParks(5, 30)); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/parks.fudj"
	if err := fudj.SaveDataset(db, "parks", path); err != nil {
		t.Fatal(err)
	}
	if err := fudj.LoadDataset(db, "parks_copy", path); err != nil {
		t.Fatal(err)
	}
	a := mustCount(t, db, `SELECT COUNT(*) FROM parks p`)
	b := mustCount(t, db, `SELECT COUNT(*) FROM parks_copy p`)
	if a != b || a != 30 {
		t.Errorf("counts %d vs %d", a, b)
	}
	// TSV import through the public API.
	schema := fudj.NewSchema(
		fudj.Field{Name: "id", Kind: fudj.KindInt64},
		fudj.Field{Name: "score", Kind: fudj.KindFloat64},
	)
	tsv := "id\tscore\n1\t2.5\n2\t3.5\n"
	if err := fudj.ImportTSV(db, "scores", schema, strings.NewReader(tsv)); err != nil {
		t.Fatal(err)
	}
	if got := mustCount(t, db, `SELECT COUNT(*) FROM scores s`); got != 2 {
		t.Errorf("imported rows = %d", got)
	}
}

func mustCount(t *testing.T, db *fudj.DB, q string) int64 {
	t.Helper()
	res, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].Int64()
}
