// Park similarity: the paper's motivating workflow end to end.
// Query 1 (spatial join) finds the parks damaged by wildfires and
// materializes them with SELECT ... INTO, exactly as the paper stores
// "Damaged_Parks"; Query 2 (text-similarity join) then recommends
// alternative parks whose tag sets are similar to each damaged park's
// tags, accelerated by the prefix-filtering FUDJ.
package main

import (
	"fmt"
	"log"

	"fudj"
)

func main() {
	db := fudj.MustOpen(fudj.WithCluster(4, 2))

	if err := fudj.LoadGenerated(db, "parks", fudj.GenParks(11, 3000)); err != nil {
		log.Fatal(err)
	}
	if err := fudj.LoadGenerated(db, "wildfires", fudj.GenWildfires(12, 6000)); err != nil {
		log.Fatal(err)
	}

	if err := db.InstallLibrary(fudj.SpatialLibrary()); err != nil {
		log.Fatal(err)
	}
	if err := db.InstallLibrary(fudj.TextSimilarityLibrary()); err != nil {
		log.Fatal(err)
	}
	mustExec(db, `CREATE JOIN spatial_join(a: geometry, b: geometry, n: int)
		RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`)
	mustExec(db, `CREATE JOIN text_similarity_join(a: string, b: string, t: double)
		RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins`)

	// Query 1: damaged parks, materialized (the paper's Damaged_Parks).
	q1, err := db.Execute(`
		SELECT p.id AS park_id, p.tags AS tags, COUNT(w.id) AS num_fires
		INTO damaged_parks
		FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 32)
		GROUP BY p.id, p.tags`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Query 1: %d damaged parks materialized into damaged_parks (%v)\n\n",
		len(q1.Rows), q1.Elapsed)

	// Query 2: for each damaged park, similar parks by tag Jaccard.
	q2, err := db.Execute(`
		SELECT dp.park_id, p.id, similarity_jaccard(word_tokens(dp.tags), word_tokens(p.tags)) AS sim
		FROM damaged_parks dp, parks p
		WHERE dp.park_id <> p.id
		  AND text_similarity_join(dp.tags, p.tags, 0.8)
		ORDER BY dp.park_id, sim DESC
		LIMIT 15`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Query 2: alternative parks with similar tags (sim >= 0.8):")
	for _, row := range q2.Rows {
		fmt.Printf("  damaged park %-5v -> park %-5v sim %.3f\n",
			row[0], row[1], row[2].Float64())
	}
	fmt.Printf("\nQuery 2 ran in %v: %d candidate pairs -> %d similar, of %d×%d possible\n",
		q2.Elapsed, q2.Join.Candidates, q2.Join.Verified, len(q1.Rows), 3000)

	// The on-top equivalent evaluates Jaccard on every pair; run it on a
	// subset to show the gap without waiting.
	mustExec(db, `DROP JOIN text_similarity_join`)
	onTop, err := db.Execute(`
		SELECT COUNT(*)
		FROM damaged_parks dp, parks p
		WHERE p.id < 300 AND dp.park_id <> p.id
		  AND similarity_jaccard(word_tokens(dp.tags), word_tokens(p.tags)) >= 0.8`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-top on a 10%% sample: %v for %d candidates — the full dataset costs ~10x that\n",
		onTop.Elapsed, onTop.Join.Candidates)
}

func mustExec(db *fudj.DB, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatal(err)
	}
}
