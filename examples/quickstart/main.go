// Quickstart: define a brand-new distributed join algorithm with the
// FUDJ programming model, debug it with the single-machine standalone
// runner, then install it into the distributed engine and use it from
// SQL — the full workflow of the paper in ~100 lines of user code.
//
// The algorithm is a 1-D range-overlap join: SUMMARIZE finds the global
// [min,max] extent, DIVIDE cuts it into n buckets, ASSIGN multi-assigns
// each range to every bucket it spans, MATCH is the default equality
// (so the engine uses its hash-join path), VERIFY checks real overlap,
// and the framework's default duplicate avoidance removes the dupes
// multi-assignment creates.
package main

import (
	"fmt"
	"log"

	"fudj"
)

type summary struct{ Min, Max int64 }

type plan struct {
	Min, Width int64
	N          int
}

func (p plan) bucket(v int64) int {
	b := int((v - p.Min) / p.Width)
	if b < 0 {
		b = 0
	}
	if b >= p.N {
		b = p.N - 1
	}
	return b
}

// newRangeJoin builds the join from plain functions. [2]int64 is the
// key type (a [lo,hi] range); the engine hands it to us through the
// interval translation (we use fudj.Interval below for SQL use).
func newRangeJoin() fudj.Join {
	return fudj.Wrap(fudj.Spec[fudj.Interval, fudj.Interval, summary, plan]{
		Name:   "range_overlap",
		Params: 1, // bucket count
		Dedup:  fudj.DedupAvoidance,

		NewSummary: func() summary { return summary{Min: 1 << 62, Max: -(1 << 62)} },
		LocalAggLeft: func(k fudj.Interval, s summary) summary {
			if k.Start < s.Min {
				s.Min = k.Start
			}
			if k.End > s.Max {
				s.Max = k.End
			}
			return s
		},
		GlobalAgg: func(a, b summary) summary {
			if b.Min < a.Min {
				a.Min = b.Min
			}
			if b.Max > a.Max {
				a.Max = b.Max
			}
			return a
		},
		Divide: func(l, r summary, params []any) (plan, error) {
			n, ok := params[0].(int64)
			if !ok || n < 1 {
				return plan{}, fmt.Errorf("range_overlap: bad bucket count %v", params[0])
			}
			min, max := l.Min, l.Max
			if r.Min < min {
				min = r.Min
			}
			if r.Max > max {
				max = r.Max
			}
			w := (max - min + 1) / n
			if w < 1 {
				w = 1
			}
			return plan{Min: min, Width: w, N: int(n)}, nil
		},
		AssignLeft: func(k fudj.Interval, p plan, dst []fudj.BucketID) []fudj.BucketID {
			for b := p.bucket(k.Start); b <= p.bucket(k.End); b++ {
				dst = append(dst, b)
			}
			return dst
		},
		Verify: func(_ fudj.BucketID, l fudj.Interval, _ fudj.BucketID, r fudj.Interval, _ plan) bool {
			return l.Overlaps(r)
		},
	})
}

func main() {
	// --- Step 1: debug standalone (the paper's single-machine runner).
	join := newRangeJoin()
	left := []any{
		fudj.Interval{Start: 0, End: 10},
		fudj.Interval{Start: 20, End: 30},
	}
	right := []any{
		fudj.Interval{Start: 5, End: 25},
		fudj.Interval{Start: 100, End: 110},
	}
	stats, err := fudj.RunStandalone(join, left, right, []any{int64(4)}, func(l, r any) {
		fmt.Printf("standalone match: %v x %v\n", l, r)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("standalone stats:", stats)

	// --- Step 2: package it as a library and install it in the engine.
	lib := fudj.NewLibrary("mylib")
	lib.MustRegister("quickstart.RangeJoin", newRangeJoin)

	db := fudj.MustOpen(fudj.WithCluster(4, 2))
	if err := db.InstallLibrary(lib); err != nil {
		log.Fatal(err)
	}

	// A little dataset of work shifts.
	schema := fudj.NewSchema(
		fudj.Field{Name: "id", Kind: fudj.KindInt64},
		fudj.Field{Name: "worker", Kind: fudj.KindString},
		fudj.Field{Name: "shift", Kind: fudj.KindInterval},
	)
	workers := []string{"ada", "grace", "edsger", "barbara"}
	var recs []fudj.Record
	for i := int64(0); i < 40; i++ {
		start := (i * 97) % 480
		recs = append(recs, fudj.Record{
			fudj.NewInt64(i),
			fudj.NewString(workers[i%4]),
			fudj.NewIntervalValue(fudj.Interval{Start: start, End: start + 60}),
		})
	}
	if err := db.CreateDataset("shifts", schema, recs); err != nil {
		log.Fatal(err)
	}

	// --- Step 3: CREATE JOIN, then query with full SQL around it.
	mustExec(db, `CREATE JOIN range_overlap(a: interval, b: interval, n: int)
		RETURNS boolean AS "quickstart.RangeJoin" AT mylib`)

	res, err := db.Execute(`
		SELECT a.worker, COUNT(*) AS overlapping_shifts
		FROM shifts a, shifts b
		WHERE a.id <> b.id AND range_overlap(a.shift, b.shift, 8)
		GROUP BY a.worker
		ORDER BY overlapping_shifts DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworkers by overlapping shifts:")
	for _, row := range res.Rows {
		fmt.Printf("  %-8v %v\n", row[0], row[1])
	}
	fmt.Printf("\nplan was:\n%s", res.Plan)
}

func mustExec(db *fudj.DB, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatal(err)
	}
}
