// Trajectory close encounters: the trajectory join class the paper's
// related work surveys, running on the shipped trajectory closeness
// library. Which class-1 vehicles came within distance d of a class-2
// vehicle? Useful for contact tracing, near-miss analysis, or ride
// pooling — and quadratically expensive without a partition-based join.
package main

import (
	"fmt"
	"log"

	"fudj"
)

func main() {
	db := fudj.MustOpen(fudj.WithCluster(4, 2))

	if err := fudj.LoadGenerated(db, "trips", fudj.GenTrajectories(55, 2500)); err != nil {
		log.Fatal(err)
	}
	if err := db.InstallLibrary(fudj.TrajectoryLibrary()); err != nil {
		log.Fatal(err)
	}
	mustExec(db, `CREATE JOIN traj_close(a: linestring, b: linestring, n: int, d: double)
		RETURNS boolean AS "traj.ClosenessJoin" AT trajjoins`)

	query := `
		SELECT a.id, COUNT(*) AS encounters
		FROM trips a, trips b
		WHERE a.class = 1 AND b.class = 2
		  AND traj_close(a.route, b.route, 24, 2.0)
		GROUP BY a.id
		ORDER BY encounters DESC, a.id
		LIMIT 10`
	res, err := db.Execute(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("class-1 vehicles with the most close encounters (d <= 2):")
	for _, row := range res.Rows {
		fmt.Printf("  vehicle %-6v %v encounters\n", row[0], row[1])
	}
	fmt.Printf("\nFUDJ:   %v (%d candidates -> %d verified)\n",
		res.Elapsed, res.Join.Candidates, res.Join.Verified)

	// The on-top arm computes the exact polyline distance on every
	// class-1 × class-2 pair.
	onTop := `
		SELECT a.id, COUNT(*) AS encounters
		FROM trips a, trips b
		WHERE a.class = 1 AND b.class = 2
		  AND st_distance(a.route, b.route) <= 2.0
		GROUP BY a.id
		ORDER BY encounters DESC, a.id
		LIMIT 10`
	ref, err := db.Execute(onTop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-top: %v (%d candidates)\n", ref.Elapsed, ref.Join.Candidates)
	if fmt.Sprint(res.Rows) != fmt.Sprint(ref.Rows) {
		log.Fatal("MISMATCH between FUDJ and on-top results")
	}
	fmt.Printf("results agree; speed-up %.1fx\n", ref.Elapsed.Seconds()/res.Elapsed.Seconds())
}

func mustExec(db *fudj.DB, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatal(err)
	}
}
