// Wildfire–parks analytics: the paper's motivating Query 1. Which
// parks were affected by recent wildfires? A spatial join between park
// boundary polygons and wildfire points, combined with filtering,
// aggregation, and ordering — the kind of query only a join integrated
// into the full optimizer can run well.
//
// The example runs the query three ways (the paper's three arms) and
// prints the timings: FUDJ, the hand-built built-in operator, and the
// on-top NLJ with a scalar predicate.
package main

import (
	"fmt"
	"log"

	"fudj"
)

func main() {
	db := fudj.MustOpen(fudj.WithCluster(4, 2))

	// Load synthetic stand-ins for the UCR-STAR Parks and WildfireDB
	// datasets (Table I).
	if err := fudj.LoadGenerated(db, "parks", fudj.GenParks(1, 3000)); err != nil {
		log.Fatal(err)
	}
	if err := fudj.LoadGenerated(db, "wildfires", fudj.GenWildfires(2, 6000)); err != nil {
		log.Fatal(err)
	}

	// Install the spatial FUDJ library and create the join.
	if err := db.InstallLibrary(fudj.SpatialLibrary()); err != nil {
		log.Fatal(err)
	}
	mustExec(db, `CREATE JOIN spatial_join(a: geometry, b: geometry, n: int)
		RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`)
	db.RegisterBuiltinJoin("spatial_join", fudj.BuiltinSpatialPlaneSweep)

	// The paper's Query 1, in this engine's dialect: recent wildfires
	// contained in each park boundary, counted per park, busiest first.
	fudjQuery := `
		SELECT p.id, COUNT(w.id) AS num_fires
		FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 32) AND w.year >= 2022
		GROUP BY p.id
		ORDER BY num_fires DESC, p.id
		LIMIT 10`
	onTopQuery := `
		SELECT p.id, COUNT(w.id) AS num_fires
		FROM parks p, wildfires w
		WHERE st_contains(p.boundary, w.location) AND w.year >= 2022
		GROUP BY p.id
		ORDER BY num_fires DESC, p.id
		LIMIT 10`

	// Arm 1: FUDJ.
	res, err := db.Execute(fudjQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parks hit by the most wildfires since 2022 (FUDJ plan):")
	for _, row := range res.Rows {
		fmt.Printf("  park %-6v %v fires\n", row[0], row[1])
	}
	fmt.Printf("FUDJ:     %v  (%d candidates -> %d verified, %d B shuffled)\n",
		res.Elapsed, res.Join.Candidates, res.Join.Verified, res.Cluster.BytesShuffled)

	// Arm 2: the hand-built plane-sweep operator.
	db.SetJoinMode(fudj.ModeBuiltin)
	res2, err := db.Execute(fudjQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Built-in: %v\n", res2.Elapsed)
	db.SetJoinMode(fudj.ModeFUDJ)

	// Arm 3: on-top (NLJ + scalar UDF), the slow baseline.
	res3, err := db.Execute(onTopQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("On-top:   %v  (%d candidates)\n", res3.Elapsed, res3.Join.Candidates)
	fmt.Printf("\nFUDJ speed-up over on-top: %.1fx\n",
		res3.Elapsed.Seconds()/res.Elapsed.Seconds())
}

func mustExec(db *fudj.DB, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatal(err)
	}
}
