// Weather overlap: the paper's Query 3 — the query "no DBMS today
// would generate an optimized plan for": a three-way join combining a
// spatial join (fires in parks) with an interval join (weather sensor
// readings overlapping the burn window), plus distance filtering and
// aggregation. With two FUDJ predicates installed, the optimizer
// builds a left-deep plan running both optimized joins.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fudj"
)

func main() {
	db := fudj.MustOpen(fudj.WithCluster(4, 2))

	if err := fudj.LoadGenerated(db, "parks", fudj.GenParks(21, 800)); err != nil {
		log.Fatal(err)
	}
	if err := fudj.LoadGenerated(db, "wildfires", fudj.GenWildfires(22, 2000)); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateDataset("weather", weatherSchema(), weatherRecords(23, 3000)); err != nil {
		log.Fatal(err)
	}

	if err := db.InstallLibrary(fudj.SpatialLibrary()); err != nil {
		log.Fatal(err)
	}
	if err := db.InstallLibrary(fudj.IntervalLibrary()); err != nil {
		log.Fatal(err)
	}
	mustExec(db, `CREATE JOIN spatial_join(a: geometry, b: geometry, n: int)
		RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`)
	mustExec(db, `CREATE JOIN overlapping_interval(a: interval, b: interval, n: int)
		RETURNS boolean AS "oip.IntervalJoin" AT intervaljoins`)

	// Query 3's shape: average temperature per park during its fires,
	// from sensors reading while the fire burned and close to it.
	query := `
		SELECT p.id, COUNT(*) AS readings, AVG(s.temp) AS avg_temp
		FROM wildfires f, parks p, weather s
		WHERE spatial_join(p.boundary, f.location, 16)
		  AND overlapping_interval(f.burn, s.reading_interval, 200)
		  AND st_distance(f.location, s.location) < 120
		GROUP BY p.id
		ORDER BY readings DESC, p.id
		LIMIT 10`

	// Show the plan first: two optimized joins in one query.
	plan, err := db.Execute("EXPLAIN " + query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimizer plan for the combined spatial + interval query:")
	fmt.Println(plan.Plan)

	res, err := db.Execute(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("average temperature near each park's fires:")
	for _, row := range res.Rows {
		fmt.Printf("  park %-5v %4v readings, avg temp %.1f\n",
			row[0], row[1], row[2].Float64())
	}
	fmt.Printf("\nexecuted in %v (%d candidates -> %d verified across both joins)\n",
		res.Elapsed, res.Join.Candidates, res.Join.Verified)
}

func weatherSchema() *fudj.Schema {
	return fudj.NewSchema(
		fudj.Field{Name: "id", Kind: fudj.KindInt64},
		fudj.Field{Name: "location", Kind: fudj.KindPoint},
		fudj.Field{Name: "reading_interval", Kind: fudj.KindInterval},
		fudj.Field{Name: "temp", Kind: fudj.KindInt64},
	)
}

// weatherRecords builds the paper's Weather dataset (Type 2): sensor
// readings with a location, a reading interval, and a temperature.
func weatherRecords(seed int64, n int) []fudj.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]fudj.Record, n)
	for i := range recs {
		start := rng.Int63n(100000)
		recs[i] = fudj.Record{
			fudj.NewInt64(int64(i)),
			fudj.NewPointValue(fudj.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}),
			fudj.NewIntervalValue(fudj.Interval{Start: start, End: start + 30 + rng.Int63n(300)}),
			fudj.NewInt64(40 + rng.Int63n(70)),
		}
	}
	return recs
}

func mustExec(db *fudj.DB, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatal(err)
	}
}
