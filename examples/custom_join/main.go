// Custom join: extending the system with an algorithm the library does
// NOT ship — a point distance join ("which sensor pairs are within d of
// each other?"). It demonstrates the part of the FUDJ model the three
// reference joins leave unexercised together: a single-assign
// partitioning with a *custom theta MATCH* over neighboring grid cells.
//
// Algorithm: SUMMARIZE computes the joint MBR; DIVIDE lays a square
// grid whose cell side is the distance threshold d, so any pair within
// d lives in the same or adjacent cells; ASSIGN places each point in
// its single cell (no duplicates, no dedup needed); MATCH accepts
// cell pairs that are neighbors (the theta condition); VERIFY computes
// the exact Euclidean distance.
package main

import (
	"fmt"
	"log"
	"math"

	"fudj"
)

type mbrSummary struct{ MinX, MinY, MaxX, MaxY float64 }

type gridPlan struct {
	MinX, MinY float64
	Cell       float64 // cell side = distance threshold
	Cols       int
	D          float64
}

func (p gridPlan) cellOf(pt fudj.Point) (int, int) {
	cx := int(math.Floor((pt.X - p.MinX) / p.Cell))
	cy := int(math.Floor((pt.Y - p.MinY) / p.Cell))
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cx, cy
}

const cellBits = 16

func packCell(cx, cy int) int      { return cx<<cellBits | cy }
func unpackCell(id int) (int, int) { return id >> cellBits, id & (1<<cellBits - 1) }
func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func newDistanceJoin() fudj.Join {
	return fudj.Wrap(fudj.Spec[fudj.Point, fudj.Point, mbrSummary, gridPlan]{
		Name:   "points_within",
		Params: 1, // the distance threshold d
		Dedup:  fudj.DedupNone,

		NewSummary: func() mbrSummary {
			return mbrSummary{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
		},
		LocalAggLeft: func(pt fudj.Point, s mbrSummary) mbrSummary {
			s.MinX = math.Min(s.MinX, pt.X)
			s.MinY = math.Min(s.MinY, pt.Y)
			s.MaxX = math.Max(s.MaxX, pt.X)
			s.MaxY = math.Max(s.MaxY, pt.Y)
			return s
		},
		GlobalAgg: func(a, b mbrSummary) mbrSummary {
			a.MinX = math.Min(a.MinX, b.MinX)
			a.MinY = math.Min(a.MinY, b.MinY)
			a.MaxX = math.Max(a.MaxX, b.MaxX)
			a.MaxY = math.Max(a.MaxY, b.MaxY)
			return a
		},
		Divide: func(l, r mbrSummary, params []any) (gridPlan, error) {
			d, ok := params[0].(float64)
			if !ok || d <= 0 {
				return gridPlan{}, fmt.Errorf("points_within: distance must be a positive float, got %v", params[0])
			}
			minX := math.Min(l.MinX, r.MinX)
			minY := math.Min(l.MinY, r.MinY)
			maxX := math.Max(l.MaxX, r.MaxX)
			cols := int((maxX-minX)/d) + 1
			return gridPlan{MinX: minX, MinY: minY, Cell: d, Cols: cols, D: d}, nil
		},
		AssignLeft: func(pt fudj.Point, p gridPlan, dst []fudj.BucketID) []fudj.BucketID {
			cx, cy := p.cellOf(pt)
			return append(dst, packCell(cx, cy))
		},
		// The custom theta MATCH: adjacent (or identical) cells only.
		Match: func(b1, b2 fudj.BucketID) bool {
			x1, y1 := unpackCell(b1)
			x2, y2 := unpackCell(b2)
			return abs(x1-x2) <= 1 && abs(y1-y2) <= 1
		},
		Verify: func(_ fudj.BucketID, l fudj.Point, _ fudj.BucketID, r fudj.Point, p gridPlan) bool {
			return l.Distance(r) <= p.D
		},
	})
}

func main() {
	db := fudj.MustOpen(fudj.WithCluster(4, 2))

	// Sensors = the wildfire points; find close pairs from different years.
	if err := fudj.LoadGenerated(db, "wildfires", fudj.GenWildfires(31, 4000)); err != nil {
		log.Fatal(err)
	}

	lib := fudj.NewLibrary("distancelib")
	lib.MustRegister("distance.PointsWithin", newDistanceJoin)
	if err := db.InstallLibrary(lib); err != nil {
		log.Fatal(err)
	}
	mustExec(db, `CREATE JOIN points_within(a: point, b: point, d: double)
		RETURNS boolean AS "distance.PointsWithin" AT distancelib`)

	query := `
		SELECT COUNT(*) AS close_pairs
		FROM wildfires a, wildfires b
		WHERE a.year = 2020 AND b.year = 2023
		  AND points_within(a.location, b.location, 5.0)`
	res, err := db.Execute(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2020-fire / 2023-fire pairs within distance 5: %v\n", res.Rows[0][0])
	fmt.Printf("FUDJ:   %v (%d candidates -> %d verified)\n",
		res.Elapsed, res.Join.Candidates, res.Join.Verified)

	// Cross-check against the on-top formulation.
	onTop := `
		SELECT COUNT(*) AS close_pairs
		FROM wildfires a, wildfires b
		WHERE a.year = 2020 AND b.year = 2023
		  AND st_distance(a.location, b.location) <= 5.0`
	res2, err := db.Execute(onTop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-top: %v (%d candidates)\n", res2.Elapsed, res2.Join.Candidates)
	if res.Rows[0][0].Int64() != res2.Rows[0][0].Int64() {
		log.Fatalf("MISMATCH: FUDJ %v vs on-top %v", res.Rows[0][0], res2.Rows[0][0])
	}
	fmt.Println("results agree; custom theta-match join verified against brute force")
}

func mustExec(db *fudj.DB, sql string) {
	if _, err := db.Execute(sql); err != nil {
		log.Fatal(err)
	}
}
