// Ingest: the data lifecycle around the engine. Generate a synthetic
// dataset, export it as TSV (the cmd/datagen format), import the TSV
// back through the public API, run a FUDJ query over it, then persist
// the query result as a binary dataset file and reload it — the
// storage path a deployment would use between sessions.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"fudj"
)

func main() {
	dir, err := os.MkdirTemp("", "fudj-ingest")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate taxi rides and export them as TSV.
	rides := fudj.GenNYCTaxi(77, 3000)
	tsvPath := filepath.Join(dir, "rides.tsv")
	if err := exportTSV(tsvPath, rides); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d rides to %s\n", len(rides.Records), tsvPath)

	// 2. Import the TSV into a fresh database.
	db := fudj.MustOpen(fudj.WithCluster(2, 2))
	f, err := os.Open(tsvPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := fudj.ImportTSV(db, "rides", rides.Schema, f); err != nil {
		log.Fatal(err)
	}
	f.Close()

	// 3. Run an interval FUDJ over the imported data and materialize
	// the busiest overlap pairs.
	if err := db.InstallLibrary(fudj.IntervalLibrary()); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN overlapping_interval(a: interval, b: interval, n: int)
		RETURNS boolean AS "oip.IntervalJoin" AT intervaljoins`); err != nil {
		log.Fatal(err)
	}
	res, err := db.Execute(`
		SELECT a.id AS ride_a, COUNT(*) AS overlaps
		INTO busy_rides
		FROM rides a, rides b
		WHERE a.vendor = 1 AND b.vendor = 2
		  AND overlapping_interval(a.ride_interval, b.ride_interval, 500)
		GROUP BY a.id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval join: %d vendor-1 rides overlap vendor-2 rides (%v)\n",
		len(res.Rows), res.Elapsed)

	// 4. Persist the materialized result and reload it elsewhere.
	binPath := filepath.Join(dir, "busy_rides.fudj")
	if err := fudj.SaveDataset(db, "busy_rides", binPath); err != nil {
		log.Fatal(err)
	}
	db2 := fudj.MustOpen(fudj.WithCluster(1, 2))
	if err := fudj.LoadDataset(db2, "busy_rides", binPath); err != nil {
		log.Fatal(err)
	}
	check, err := db2.Execute(`SELECT COUNT(*), MAX(b.overlaps) FROM busy_rides b`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded in a fresh database: %v rows, busiest ride overlaps %v others\n",
		check.Rows[0][0], check.Rows[0][1])
}

// exportTSV writes a generated dataset in cmd/datagen's TSV layout.
func exportTSV(path string, ds *fudj.GeneratedDataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	names := make([]string, ds.Schema.Len())
	for i, field := range ds.Schema.Fields {
		names[i] = field.Name
	}
	if _, err := fmt.Fprintln(f, strings.Join(names, "\t")); err != nil {
		return err
	}
	for _, rec := range ds.Records {
		cells := make([]string, len(rec))
		for i, v := range rec {
			cells[i] = v.String()
		}
		if _, err := fmt.Fprintln(f, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}
