package fudj_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"fudj"
)

// ExampleRunStandalone shows the single-machine development loop: an
// equality join defined as a Spec and executed standalone.
func ExampleRunStandalone() {
	type summary struct{ N int64 }
	type plan struct{ Buckets int64 }
	join := fudj.Wrap(fudj.Spec[int64, int64, summary, plan]{
		Name:         "equi",
		NewSummary:   func() summary { return summary{} },
		LocalAggLeft: func(k int64, s summary) summary { s.N++; return s },
		GlobalAgg:    func(a, b summary) summary { return summary{N: a.N + b.N} },
		Divide: func(l, r summary, _ []any) (plan, error) {
			return plan{Buckets: max64(1, (l.N+r.N)/4)}, nil
		},
		AssignLeft: func(k int64, p plan, dst []fudj.BucketID) []fudj.BucketID {
			return append(dst, int(((k%p.Buckets)+p.Buckets)%p.Buckets))
		},
		Verify: func(_ fudj.BucketID, l int64, _ fudj.BucketID, r int64, _ plan) bool {
			return l == r
		},
	})

	left := []any{int64(1), int64(2), int64(3)}
	right := []any{int64(2), int64(3), int64(4)}
	_, err := fudj.RunStandalone(join, left, right, nil, func(l, r any) {
		fmt.Printf("%v = %v\n", l, r)
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// 2 = 2
	// 3 = 3
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ExampleDB_Execute shows the engine path: load data, install a
// shipped join library, CREATE JOIN, and query through SQL.
func ExampleDB_Execute() {
	db := fudj.MustOpen(fudj.WithCluster(2, 2))

	schema := fudj.NewSchema(
		fudj.Field{Name: "id", Kind: fudj.KindInt64},
		fudj.Field{Name: "span", Kind: fudj.KindInterval},
	)
	recs := []fudj.Record{
		{fudj.NewInt64(1), fudj.NewIntervalValue(fudj.Interval{Start: 0, End: 10})},
		{fudj.NewInt64(2), fudj.NewIntervalValue(fudj.Interval{Start: 5, End: 15})},
		{fudj.NewInt64(3), fudj.NewIntervalValue(fudj.Interval{Start: 100, End: 110})},
	}
	if err := db.CreateDataset("spans", schema, recs); err != nil {
		log.Fatal(err)
	}
	if err := db.InstallLibrary(fudj.IntervalLibrary()); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN overlaps(a: interval, b: interval, n: int)
		RETURNS boolean AS "oip.IntervalJoin" AT intervaljoins`); err != nil {
		log.Fatal(err)
	}

	res, err := db.Execute(`
		SELECT a.id, b.id FROM spans a, spans b
		WHERE a.id < b.id AND overlaps(a.span, b.span, 4)
		ORDER BY a.id, b.id`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%v overlaps %v\n", row[0], row[1])
	}
	// Output:
	// 1 overlaps 2
}

// ExampleWithQueryTimeout bounds one query's execution time. The
// deadline cancels in-flight cluster work, and the error wraps
// context.DeadlineExceeded so standard classification works; a timed
// out query is NOT retryable (it would just time out again).
func ExampleWithQueryTimeout() {
	db := fudj.MustOpen(fudj.WithCluster(2, 2))

	schema := fudj.NewSchema(fudj.Field{Name: "id", Kind: fudj.KindInt64})
	recs := []fudj.Record{{fudj.NewInt64(1)}, {fudj.NewInt64(2)}}
	if err := db.CreateDataset("t", schema, recs); err != nil {
		log.Fatal(err)
	}

	// An already-expired deadline: the query is cancelled immediately.
	_, err := db.Execute(`SELECT id FROM t`, fudj.WithQueryTimeout(time.Nanosecond))
	var te *fudj.TimeoutError
	fmt.Println("timeout error:", errors.As(err, &te))
	fmt.Println("wraps deadline exceeded:", errors.Is(err, context.DeadlineExceeded))
	fmt.Println("retryable:", fudj.IsRetryable(err))
	// Output:
	// timeout error: true
	// wraps deadline exceeded: true
	// retryable: false
}

// ExampleWithPriority ranks queries for admission under concurrent
// load. With free capacity a query admits immediately whatever its
// class; under contention, high-priority queries receive a 4:2:1
// weighted share of admission slots.
func ExampleWithPriority() {
	db := fudj.MustOpen(
		fudj.WithCluster(2, 2),
		fudj.WithConcurrencyLimit(2), // at most 2 queries execute at once
	)

	schema := fudj.NewSchema(fudj.Field{Name: "id", Kind: fudj.KindInt64})
	recs := []fudj.Record{{fudj.NewInt64(1)}, {fudj.NewInt64(2)}}
	if err := db.CreateDataset("t", schema, recs); err != nil {
		log.Fatal(err)
	}

	res, err := db.Execute(`SELECT count(*) FROM t`, fudj.WithPriority(fudj.PriorityHigh))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", res.Rows[0][0])
	fmt.Println("priority:", res.Sched.Priority)
	// Output:
	// rows: 2
	// priority: high
}
