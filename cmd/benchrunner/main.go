// Command benchrunner regenerates the paper's tables and figures.
//
// Usage:
//
//	benchrunner -exp all                # every experiment
//	benchrunner -exp fig9 -scale 2      # one experiment, bigger data
//	benchrunner -list                   # list experiment ids
//
// Experiment ids follow the paper: table1, table2, fig1, fig9 (a/b/c),
// fig10, fig11, fig12a, fig12b, fig12c, plus the ablation_* extras.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fudj/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id to run, or 'all'")
		scale  = flag.Float64("scale", 1.0, "dataset scale factor")
		nodes  = flag.Int("nodes", 4, "simulated cluster nodes")
		cores  = flag.Int("cores", 2, "cores per node")
		seed   = flag.Int64("seed", 42, "data generation seed")
		budget = flag.Duration("budget", 20*time.Second, "per-run budget before an arm is marked DNF")
		jsout  = flag.String("json", "", "path for experiments that write a JSON artifact")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Config{
		Scale:   *scale,
		Nodes:   *nodes,
		Cores:   *cores,
		Seed:    *seed,
		Budget:  *budget,
		JSONOut: *jsout,
	}
	if err := bench.Run(*exp, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}
