// Command loccount prints the Table II productivity comparison: lines
// of code of each FUDJ join implementation versus its hand-built
// operator twin.
package main

import (
	"fmt"
	"os"

	"fudj/internal/bench"
)

func main() {
	rows, err := bench.TableIILOC()
	if err != nil {
		fmt.Fprintln(os.Stderr, "loccount:", err)
		os.Exit(1)
	}
	fmt.Printf("%-16s %8s %10s %8s\n", "Join Type", "FUDJ", "Built-in", "Ratio")
	for _, r := range rows {
		fmt.Printf("%-16s %5d loc %7d loc %7.2fx\n", r.Join, r.FUDJ, r.Builtin,
			float64(r.Builtin)/float64(r.FUDJ))
	}
}
