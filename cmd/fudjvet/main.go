// Command fudjvet is the FUDJ multichecker: it runs the
// internal/analysis suite (maporder, seedrand, udfcatch, boundedalloc,
// ctxplumb, metricslock, spillclose, errwrap, sidesym) over the
// repository and reports every invariant violation, counting
// //fudjvet:ignore suppressions so the escape hatch stays visible.
//
// It runs in two modes:
//
//	fudjvet [-json] [-budget file] ./...       standalone: loads packages itself
//	go vet -vettool=$(pwd)/bin/fudjvet ./...   unitchecker: driven by the go command
//
// The unitchecker mode speaks the go command's vet tool protocol
// (-V=full / -flags / <package>.cfg), type-checking each package
// against the export data the go command hands it, so `make vet` and
// CI integrate the suite exactly like the standard vet analyzers.
//
// Interprocedural facts flow between packages in both modes: the
// standalone driver analyzes packages in dependency order with one
// shared fact store, and the unitchecker serializes each package's
// facts into its .vetx file, which the go command hands to dependent
// packages (PackageVetx) alongside their export data.
//
// Flags (standalone mode only):
//
//	-json          emit findings and suppressions as a JSON array on
//	               stdout instead of vet-style text on stderr
//	-budget file   suppression ratchet: fail if the live
//	               //fudjvet:ignore count for any rule exceeds the
//	               per-rule budget listed in file
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"fudj/internal/analysis"
	"fudj/internal/analysis/framework"
)

// version feeds the go command's build cache key; bump it whenever
// analyzer semantics change so stale vet results are invalidated.
const version = "fudjvet version v2.0.0"

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: fudjvet [-json] [-budget file] [packages] | go vet -vettool=fudjvet [packages]")
		os.Exit(1)
	}
	switch {
	case args[0] == "-V=full" || args[0] == "-V":
		// The go command hashes this line into its build cache key.
		fmt.Println(version)
	case args[0] == "-flags":
		// The go command asks for our flag schema; we define none.
		fmt.Println("[]")
	case strings.HasSuffix(args[0], ".cfg"):
		unitcheck(args[0])
	default:
		standalone(args)
	}
}

// standalone loads the given package patterns with `go list -export`
// and analyzes everything in one process, in dependency order with a
// shared fact store so interprocedural facts resolve in-process.
func standalone(args []string) {
	jsonOut := false
	budgetFile := ""
	var patterns []string
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-json":
			jsonOut = true
		case args[i] == "-budget":
			if i+1 >= len(args) {
				fatal(fmt.Errorf("-budget requires a file argument"))
			}
			i++
			budgetFile = args[i]
		case strings.HasPrefix(args[i], "-budget="):
			budgetFile = strings.TrimPrefix(args[i], "-budget=")
		default:
			patterns = append(patterns, args[i])
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := framework.LoadPackages(".", patterns)
	if err != nil {
		fatal(err)
	}
	facts := framework.NewFactStore()
	var diags []framework.Diagnostic
	var suppressed []framework.Suppression
	for _, pkg := range pkgs {
		res, err := framework.RunAnalyzers(pkg, analysis.All(), facts)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, res.Diagnostics...)
		suppressed = append(suppressed, res.Suppressed...)
	}

	budgetErrs := checkBudget(budgetFile, suppressed)

	if jsonOut {
		out, err := marshalJSON(diags, suppressed)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
		os.Stdout.Write([]byte("\n"))
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		reportSuppressions(suppressed)
	}
	for _, e := range budgetErrs {
		fmt.Fprintln(os.Stderr, "fudjvet:", e)
	}
	if len(diags) > 0 || len(budgetErrs) > 0 {
		if !jsonOut && len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "fudjvet: %d finding(s)\n", len(diags))
		}
		os.Exit(2)
	}
}

// jsonFinding is one -json output record: a live finding or a
// suppressed one (suppressed=true, reason populated).
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col,omitempty"`
	Rule       string `json:"rule"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// marshalJSON renders diagnostics and suppressions as one sorted JSON
// array, findings first within each file/line.
func marshalJSON(diags []framework.Diagnostic, sup []framework.Suppression) ([]byte, error) {
	records := make([]jsonFinding, 0, len(diags)+len(sup))
	for _, d := range diags {
		records = append(records, jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	for _, s := range sup {
		records = append(records, jsonFinding{
			File: s.Pos.Filename, Line: s.Pos.Line, Col: s.Pos.Column,
			Rule: s.Rule, Message: s.Message, Suppressed: true, Reason: s.Reason,
		})
	}
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Suppressed != b.Suppressed {
			return !a.Suppressed
		}
		return a.Rule < b.Rule
	})
	return json.MarshalIndent(records, "", "\t")
}

// parseBudget reads a suppression budget file: one "rule count" pair
// per line, '#' comments and blank lines ignored.
func parseBudget(data []byte) (map[string]int, error) {
	budget := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("budget line %d: want \"rule count\", got %q", i+1, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("budget line %d: bad count %q", i+1, fields[1])
		}
		budget[fields[0]] = n
	}
	return budget, nil
}

// checkBudget enforces the suppression ratchet: the live
// //fudjvet:ignore count per rule must not exceed the checked-in
// budget, and rules absent from the budget get zero. Shrinking the
// budget is the only way it changes — a new suppression forces either
// a fix or a reviewed budget bump.
func checkBudget(file string, sup []framework.Suppression) []error {
	if file == "" {
		return nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return []error{fmt.Errorf("suppression budget: %w", err)}
	}
	budget, err := parseBudget(data)
	if err != nil {
		return []error{fmt.Errorf("suppression budget: %w", err)}
	}
	live := make(map[string]int)
	for _, s := range sup {
		live[s.Rule]++
	}
	var rules []string
	for r := range live {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	var errs []error
	for _, r := range rules {
		if live[r] > budget[r] {
			errs = append(errs, fmt.Errorf(
				"suppression budget exceeded for %s: %d live //fudjvet:ignore directives, budget %d (%s); fix the findings or shrink elsewhere before raising the budget",
				r, live[r], budget[r], file))
		}
	}
	return errs
}

// reportSuppressions keeps the escape hatch honest: every silenced
// finding is counted and listed with its reason.
func reportSuppressions(sup []framework.Suppression) {
	if len(sup) == 0 {
		return
	}
	byRule := make(map[string]int)
	for _, s := range sup {
		byRule[s.Rule]++
	}
	var parts []string
	for _, a := range analysis.All() {
		if n := byRule[a.Name]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", a.Name, n))
		}
	}
	fmt.Fprintf(os.Stderr, "fudjvet: %d finding(s) suppressed by //fudjvet:ignore (%s)\n",
		len(sup), strings.Join(parts, ", "))
	for _, s := range sup {
		fmt.Fprintf(os.Stderr, "fudjvet: suppressed %s at %s:%d: %s\n", s.Rule, s.Pos.Filename, s.Pos.Line, s.Reason)
	}
}

// vetConfig mirrors the JSON the go command writes for -vettool
// invocations (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package as directed by a go vet cfg file.
// Dependency facts arrive through cfg.PackageVetx (each dependency's
// serialized fact store); this package's facts — including those of a
// VetxOnly dependency run — are written to cfg.VetxOutput for the
// packages that import it.
func unitcheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", cfgFile, err))
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := framework.TypeCheck(cfg.ImportPath, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput, framework.NewFactStore())
			return
		}
		fatal(err)
	}

	// Seed the store with every dependency's exported facts.
	facts := framework.NewFactStore()
	var vetxPaths []string
	for imp := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, imp)
	}
	sort.Strings(vetxPaths)
	for _, imp := range vetxPaths {
		data, err := os.ReadFile(cfg.PackageVetx[imp])
		if err != nil {
			continue // a missing dependency vetx degrades precision, not correctness
		}
		if err := facts.MergeFacts(data); err != nil {
			fatal(fmt.Errorf("merging facts of %s: %w", imp, err))
		}
	}

	res, err := framework.RunAnalyzers(pkg, analysis.All(), facts)
	if err != nil {
		fatal(err)
	}
	writeVetx(cfg.VetxOutput, facts)
	if cfg.VetxOnly {
		return // a dependency analyzed only for facts — findings belong to its own vet run
	}
	reportSuppressions(res.Suppressed)
	if len(res.Diagnostics) > 0 {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// writeVetx serializes the fact store to the go command's requested
// facts file. The go command requires the file to exist even when
// there are no facts.
func writeVetx(path string, facts *framework.FactStore) {
	if path == "" {
		return
	}
	data, err := facts.MarshalFacts()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fudjvet:", err)
	os.Exit(1)
}
