// Command fudjvet is the FUDJ multichecker: it runs the
// internal/analysis suite (maporder, seedrand, udfcatch, boundedalloc,
// ctxplumb) over the repository and reports every invariant violation,
// counting //fudjvet:ignore suppressions so the escape hatch stays
// visible.
//
// It runs in two modes:
//
//	fudjvet ./...                     standalone: loads packages itself
//	go vet -vettool=$(pwd)/bin/fudjvet ./...   unitchecker: driven by the go command
//
// The unitchecker mode speaks the go command's vet tool protocol
// (-V=full / -flags / <package>.cfg), type-checking each package
// against the export data the go command hands it, so `make vet` and
// CI integrate the suite exactly like the standard vet analyzers.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"fudj/internal/analysis"
	"fudj/internal/analysis/framework"
)

const version = "fudjvet version v1.1.0"

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: fudjvet [packages] | go vet -vettool=fudjvet [packages]")
		os.Exit(1)
	}
	switch {
	case args[0] == "-V=full" || args[0] == "-V":
		// The go command hashes this line into its build cache key.
		fmt.Println(version)
	case args[0] == "-flags":
		// The go command asks for our flag schema; we define none.
		fmt.Println("[]")
	case strings.HasSuffix(args[0], ".cfg"):
		unitcheck(args[0])
	default:
		standalone(args)
	}
}

// standalone loads the given package patterns with `go list -export`
// and analyzes everything in one process.
func standalone(patterns []string) {
	pkgs, err := framework.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fudjvet:", err)
		os.Exit(1)
	}
	findings := 0
	var suppressed []framework.Suppression
	for _, pkg := range pkgs {
		res, err := framework.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "fudjvet:", err)
			os.Exit(1)
		}
		for _, d := range res.Diagnostics {
			fmt.Fprintln(os.Stderr, d)
			findings++
		}
		suppressed = append(suppressed, res.Suppressed...)
	}
	reportSuppressions(suppressed)
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "fudjvet: %d finding(s)\n", findings)
		os.Exit(2)
	}
}

// reportSuppressions keeps the escape hatch honest: every silenced
// finding is counted and listed with its reason.
func reportSuppressions(sup []framework.Suppression) {
	if len(sup) == 0 {
		return
	}
	byRule := make(map[string]int)
	for _, s := range sup {
		byRule[s.Rule]++
	}
	var parts []string
	for _, a := range analysis.All() {
		if n := byRule[a.Name]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", a.Name, n))
		}
	}
	fmt.Fprintf(os.Stderr, "fudjvet: %d finding(s) suppressed by //fudjvet:ignore (%s)\n",
		len(sup), strings.Join(parts, ", "))
	for _, s := range sup {
		fmt.Fprintf(os.Stderr, "fudjvet: suppressed %s at %s:%d: %s\n", s.Rule, s.Pos.Filename, s.Pos.Line, s.Reason)
	}
}

// vetConfig mirrors the JSON the go command writes for -vettool
// invocations (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package as directed by a go vet cfg file.
func unitcheck(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", cfgFile, err))
	}
	// The go command requires the vetx (facts) file regardless; the
	// fudjvet analyzers exchange no facts, so it is a placeholder.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("fudjvet: no facts\n"), 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // a dependency analyzed only for facts — nothing to do
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := framework.TypeCheck(cfg.ImportPath, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	res, err := framework.RunAnalyzers(pkg, analysis.All())
	if err != nil {
		fatal(err)
	}
	reportSuppressions(res.Suppressed)
	if len(res.Diagnostics) > 0 {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fudjvet:", err)
	os.Exit(1)
}
