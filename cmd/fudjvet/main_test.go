package main

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"fudj/internal/analysis/framework"
)

// TestMarshalJSONGolden locks the -json output shape: one sorted array
// of findings and suppressions with file/line/rule/message/suppressed.
func TestMarshalJSONGolden(t *testing.T) {
	diags := []framework.Diagnostic{
		{
			Rule:    "boundedalloc",
			Pos:     token.Position{Filename: "internal/wire/wire.go", Line: 42, Column: 9},
			Message: "make sized by n, which comes from a raw decoded length prefix",
		},
		{
			Rule:    "udfcatch",
			Pos:     token.Position{Filename: "internal/engine/fudj.go", Line: 7, Column: 3},
			Message: "call to user-defined Match runs inside a partition task with no deferred core.CatchPanic",
		},
	}
	sup := []framework.Suppression{
		{
			Rule:    "ctxplumb",
			Pos:     token.Position{Filename: "internal/serve/server.go", Line: 192, Column: 1},
			Message: "exported Serve spawns goroutines but accepts no context.Context",
			Reason:  "mirrors http.Server.Serve: cancellation arrives via Shutdown/stopCh, not a ctx parameter",
		},
	}
	got, err := marshalJSON(diags, sup)
	if err != nil {
		t.Fatalf("marshalJSON: %v", err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "json_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o666); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-json output drifted from %s:\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestParseBudget covers the ratchet file format and its failure modes.
func TestParseBudget(t *testing.T) {
	budget, err := parseBudget([]byte("# comment\n\nudfcatch 0\nctxplumb 2\n"))
	if err != nil {
		t.Fatalf("parseBudget: %v", err)
	}
	if budget["udfcatch"] != 0 || budget["ctxplumb"] != 2 {
		t.Errorf("parsed budget %v, want udfcatch=0 ctxplumb=2", budget)
	}
	if _, err := parseBudget([]byte("udfcatch zero\n")); err == nil {
		t.Error("bad count accepted")
	}
	if _, err := parseBudget([]byte("too many fields here\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

// TestCheckBudget verifies the ratchet: counts above budget fail,
// at-or-under passes, and unlisted rules default to zero.
func TestCheckBudget(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "budget.txt")
	if err := os.WriteFile(file, []byte("ctxplumb 1\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	sup := func(rule string, n int) []framework.Suppression {
		out := make([]framework.Suppression, n)
		for i := range out {
			out[i] = framework.Suppression{Rule: rule}
		}
		return out
	}
	if errs := checkBudget(file, sup("ctxplumb", 1)); len(errs) != 0 {
		t.Errorf("at-budget run failed: %v", errs)
	}
	if errs := checkBudget(file, sup("ctxplumb", 2)); len(errs) != 1 {
		t.Errorf("over-budget run passed: %v", errs)
	}
	if errs := checkBudget(file, sup("udfcatch", 1)); len(errs) != 1 {
		t.Errorf("unlisted rule (implicit zero budget) passed: %v", errs)
	}
	if errs := checkBudget("", sup("udfcatch", 99)); len(errs) != 0 {
		t.Errorf("no budget file should disable the ratchet: %v", errs)
	}
}
