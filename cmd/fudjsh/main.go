// Command fudjsh is an interactive shell for the FUDJ engine. By
// default it opens an in-process database preloaded with the synthetic
// datasets and the three reference join libraries; with -connect it
// becomes a network client for a running fudjd, with automatic retry
// of retryable failures and idempotent resubmission.
//
//	fudjsh -c "SELECT COUNT(*) FROM parks p, wildfires w
//	           WHERE spatial_join(p.boundary, w.location, 32);"
//	echo "EXPLAIN SELECT ...;" | fudjsh
//	fudjsh                                  # interactive; \q quits
//	fudjsh -connect http://127.0.0.1:7531   # against a fudjd
//	fudjsh -connect host1:7531,host2:7531   # failover pool across instances
//
// Ctrl-C cancels the in-flight query (the structured cancellation
// error is printed); a second Ctrl-C exits the shell. In -c and script
// (piped stdin) mode the exit status is non-zero when execution ended
// in an error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fudj/internal/serve/client"
	"fudj/internal/shell"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		command  = flag.String("c", "", "statements to execute and exit")
		connect  = flag.String("connect", "", "connect to fudjd server(s) instead of opening an in-process database; a comma-separated list (host1:7531,host2:7531) enables client-side failover")
		session  = flag.String("session", "", "server session name with -connect (default \"default\")")
		deadline = flag.Duration("deadline", 0, "overall deadline for -c execution (propagated to the server with -connect)")
		records  = flag.Int("records", 2000, "records per demo dataset")
		nodes    = flag.Int("nodes", 4, "simulated cluster nodes")
		cores    = flag.Int("cores", 2, "cores per node")
		noData   = flag.Bool("empty", false, "start with no demo datasets")
		doTrace  = flag.Bool("trace", false, "collect and print execution spans (with -c)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace JSON for the last -c query (local only)")
	)
	flag.Parse()

	var (
		ex  shell.Executor
		err error
	)
	if *connect != "" {
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "fudjsh: -trace-out needs a local database; it cannot be combined with -connect")
			return 2
		}
		// Accept bare host:port forms the way the daemon prints them; a
		// comma-separated list selects the failover pool.
		var endpoints []string
		for _, e := range strings.Split(*connect, ",") {
			e = strings.TrimSpace(e)
			if e == "" {
				continue
			}
			if !strings.Contains(e, "://") {
				e = "http://" + e
			}
			endpoints = append(endpoints, e)
		}
		// The idempotency-key prefix must be unique per client process
		// within the session, or two shells would replay each other's
		// responses.
		prefix := fmt.Sprintf("sh%d-%d", os.Getpid(), time.Now().UnixNano())
		var (
			conn shell.Conn
			cerr error
		)
		if len(endpoints) > 1 {
			conn, cerr = client.NewPool(client.PoolConfig{
				Endpoints:   endpoints,
				Session:     *session,
				QueryPrefix: prefix,
				Seed:        time.Now().UnixNano(),
			})
		} else if len(endpoints) == 1 {
			conn, cerr = client.New(client.Config{
				BaseURL:     endpoints[0],
				Session:     *session,
				QueryPrefix: prefix,
				Seed:        time.Now().UnixNano(),
			})
		} else {
			cerr = fmt.Errorf("-connect %q names no endpoints", *connect)
		}
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "fudjsh:", cerr)
			return 1
		}
		ex = shell.NewRemote(conn)
	} else {
		db, serr := shell.Setup(shell.Config{
			Nodes: *nodes, Cores: *cores, Records: *records, LoadDemo: !*noData,
		})
		if serr != nil {
			fmt.Fprintln(os.Stderr, "fudjsh:", serr)
			return 1
		}
		ex = shell.NewLocal(db)
	}
	defer ex.Close()

	// First Ctrl-C cancels the in-flight query; with nothing in flight
	// (or on the next one) the shell exits.
	canceler := shell.NewCanceler()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		for range sigc {
			if !canceler.CancelActive() {
				fmt.Fprintln(os.Stderr, "\nfudjsh: interrupted")
				os.Exit(130)
			}
		}
	}()

	baseCtx := func() (context.Context, context.CancelFunc) {
		if *deadline > 0 {
			return context.WithTimeout(context.Background(), *deadline)
		}
		return context.WithCancel(context.Background())
	}

	if *command != "" {
		ctx, cancel := baseCtx()
		defer cancel()
		if *traceOut != "" {
			err = shell.ExecuteAllChrome(ctx, ex.DB(), os.Stdout, *command, *traceOut, canceler)
		} else {
			err = shell.ExecuteAll(ctx, ex, os.Stdout, *command, *doTrace, canceler)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fudjsh:", err)
			return 1
		}
		return 0
	}

	err = shell.Repl(ex, os.Stdin, os.Stdout, canceler)
	// Interactive sessions end cleanly whatever the last statement did;
	// scripts piped on stdin propagate a trailing failure.
	if err != nil && !isTerminal(os.Stdin) {
		return 1
	}
	return 0
}

// isTerminal reports whether f is an interactive terminal.
func isTerminal(f *os.File) bool {
	st, err := f.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}
