// Command fudjsh is an interactive shell for the FUDJ engine: it opens
// a database preloaded with the synthetic datasets and the three
// reference join libraries, then reads SQL statements (terminated by
// ';') from stdin or -c and prints the results.
//
//	fudjsh -c "SELECT COUNT(*) FROM parks p, wildfires w
//	           WHERE spatial_join(p.boundary, w.location, 32);"
//	echo "EXPLAIN SELECT ...;" | fudjsh
//	fudjsh            # interactive; \q quits, \joins lists joins
package main

import (
	"flag"
	"fmt"
	"os"

	"fudj"
	"fudj/internal/shell"
)

func main() {
	var (
		command  = flag.String("c", "", "statements to execute and exit")
		records  = flag.Int("records", 2000, "records per demo dataset")
		nodes    = flag.Int("nodes", 4, "simulated cluster nodes")
		cores    = flag.Int("cores", 2, "cores per node")
		noData   = flag.Bool("empty", false, "start with no demo datasets")
		doTrace  = flag.Bool("trace", false, "collect and print execution spans (with -c)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace JSON for the last -c query")
	)
	flag.Parse()

	db, err := shell.Setup(shell.Config{
		Nodes: *nodes, Cores: *cores, Records: *records, LoadDemo: !*noData,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fudjsh:", err)
		os.Exit(1)
	}

	if *command != "" {
		var opts []fudj.ExecOption
		if *doTrace || *traceOut != "" {
			opts = append(opts, fudj.Trace())
		}
		if *traceOut != "" {
			err = shell.ExecuteAllChrome(db, os.Stdout, *command, *traceOut, opts...)
		} else {
			err = shell.ExecuteAll(db, os.Stdout, *command, opts...)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fudjsh:", err)
			os.Exit(1)
		}
		return
	}
	shell.Repl(db, os.Stdin, os.Stdout)
}
