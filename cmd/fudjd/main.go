// Command fudjd is the FUDJ network daemon: it opens an engine
// database (optionally preloaded with the demo datasets and reference
// join libraries) and serves it over the versioned frame protocol.
//
//	fudjd -listen 127.0.0.1:7531
//	fudjsh -connect http://127.0.0.1:7531
//
// Endpoints: POST /v1/query (frame stream), POST /v1/cancel,
// GET /v1/queries (live view), GET /v1/catalog, GET /metrics,
// GET /v1/health (liveness), GET /v1/ready (readiness — 503 from the
// start of a drain), GET /healthz (legacy combined probe).
//
// Every response carries the daemon's stable instance ID
// (X-Fudj-Instance), minted at startup (or fixed with -instance-id):
// idempotent replay records and session catalogs are scoped to one
// instance, and the header is how clients see that scope change. Run
// several fudjd instances and point `fudjsh -connect a,b,...` at them
// for client-side failover.
//
// On SIGTERM or SIGINT the daemon drains: new and queued queries are
// refused with retryable envelopes carrying a retry-after hint,
// in-flight queries run to completion (bounded by -drain-timeout), and
// /metrics stays reachable until the last query finishes; only then
// does the listener close. A second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fudj/internal/serve"
	"fudj/internal/shell"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen       = flag.String("listen", "127.0.0.1:7531", "address to listen on")
		records      = flag.Int("records", 2000, "records per demo dataset")
		nodes        = flag.Int("nodes", 4, "simulated cluster nodes")
		cores        = flag.Int("cores", 2, "cores per node")
		noData       = flag.Bool("empty", false, "start with no demo datasets")
		maxConns     = flag.Int("max-conns", 256, "maximum concurrently served connections")
		maxQueryTime = flag.Duration("max-query-time", 5*time.Minute, "server-side ceiling on one query's execution time (0 = none)")
		sessionIdle  = flag.Duration("session-idle", serve.DefaultSessionIdle, "idle time before a session's catalog objects are swept")
		replayBytes  = flag.Int64("replay-bytes", serve.DefaultReplayBytes, "per-session byte budget for recorded replay responses")
		retryAfter   = flag.Duration("retry-after", 250*time.Millisecond, "retry-after hint attached to shed refusals")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight queries before cancelling them")
		instanceID   = flag.String("instance-id", "", "stable instance identity stamped on every response (default: random, minted at startup)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "fudjd: ", log.LstdFlags)
	db, err := shell.Setup(shell.Config{
		Nodes: *nodes, Cores: *cores, Records: *records, LoadDemo: !*noData,
	})
	if err != nil {
		logger.Println(err)
		return 1
	}
	srv, err := serve.New(serve.Config{
		DB:           db,
		MaxConns:     *maxConns,
		MaxQueryTime: *maxQueryTime,
		SessionIdle:  *sessionIdle,
		ReplayBytes:  *replayBytes,
		RetryAfter:   *retryAfter,
		InstanceID:   *instanceID,
		ErrorLog:     logger,
	})
	if err != nil {
		logger.Println(err)
		return 1
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Println(err)
		return 1
	}
	logger.Printf("serving on http://%s (protocol v%d, instance %s)", lis.Addr(), serve.ProtoVersion, srv.InstanceID())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		logger.Println("serve:", err)
		return 1
	case sig := <-sigc:
		logger.Printf("%s: draining (in-flight queries finish, new work refused)", sig)
	}

	// A second signal during the drain aborts immediately.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigc
		logger.Println("second signal: aborting drain")
		cancel()
	}()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Println("drain:", err)
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Println("shutdown:", err)
		return 1
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		logger.Println("serve:", err)
		return 1
	}
	logger.Println("drained cleanly")
	return 0
}
