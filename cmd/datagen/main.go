// Command datagen writes the synthetic datasets to disk as
// tab-separated text for inspection or use by external tools.
//
//	datagen -dataset parks -n 10000 -o parks.tsv
//	datagen -dataset all -n 5000 -dir ./data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fudj"
)

func main() {
	var (
		dataset = flag.String("dataset", "all", "wildfires|parks|nyctaxi|amazonreview|all")
		n       = flag.Int("n", 10000, "records to generate")
		seed    = flag.Int64("seed", 42, "generation seed")
		out     = flag.String("o", "", "output file (single dataset; default stdout)")
		dir     = flag.String("dir", ".", "output directory for -dataset all")
	)
	flag.Parse()

	gens := map[string]func() *fudj.GeneratedDataset{
		"wildfires":    func() *fudj.GeneratedDataset { return fudj.GenWildfires(*seed, *n) },
		"parks":        func() *fudj.GeneratedDataset { return fudj.GenParks(*seed+1, *n) },
		"nyctaxi":      func() *fudj.GeneratedDataset { return fudj.GenNYCTaxi(*seed+2, *n) },
		"amazonreview": func() *fudj.GeneratedDataset { return fudj.GenAmazonReview(*seed+3, *n) },
	}

	if *dataset == "all" {
		for name, gen := range gens {
			path := filepath.Join(*dir, name+".tsv")
			if err := writeTo(path, gen()); err != nil {
				fail(err)
			}
			fmt.Println("wrote", path)
		}
		return
	}
	gen, ok := gens[*dataset]
	if !ok {
		fail(fmt.Errorf("unknown dataset %q", *dataset))
	}
	ds := gen()
	if *out == "" {
		if err := write(os.Stdout, ds); err != nil {
			fail(err)
		}
		return
	}
	if err := writeTo(*out, ds); err != nil {
		fail(err)
	}
	fmt.Println("wrote", *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}

func writeTo(path string, ds *fudj.GeneratedDataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f, ds)
}

func write(f *os.File, ds *fudj.GeneratedDataset) error {
	w := bufio.NewWriter(f)
	names := make([]string, ds.Schema.Len())
	for i, field := range ds.Schema.Fields {
		names[i] = field.Name
	}
	fmt.Fprintln(w, "# "+ds.String())
	fmt.Fprintln(w, strings.Join(names, "\t"))
	for _, rec := range ds.Records {
		cells := make([]string, len(rec))
		for i, v := range rec {
			cells[i] = v.String()
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	return w.Flush()
}
