package fudj

import (
	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/types"
)

// The engine's data model, re-exported so applications can build
// schemas and records against the public package alone.

// Kind enumerates the dynamic value kinds.
type Kind = types.Kind

// Value kinds.
const (
	KindNull       = types.KindNull
	KindBool       = types.KindBool
	KindInt64      = types.KindInt64
	KindFloat64    = types.KindFloat64
	KindString     = types.KindString
	KindUUID       = types.KindUUID
	KindPoint      = types.KindPoint
	KindRect       = types.KindRect
	KindPolygon    = types.KindPolygon
	KindInterval   = types.KindInterval
	KindList       = types.KindList
	KindLineString = types.KindLineString
)

// Value is one dynamically typed engine value.
type Value = types.Value

// Record is one tuple.
type Record = types.Record

// Schema describes a record stream.
type Schema = types.Schema

// Field is one schema column.
type Field = types.Field

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema { return types.NewSchema(fields...) }

// Value constructors.
var (
	// Null is the null value.
	Null = types.Null
)

// NewBool wraps a bool.
func NewBool(b bool) Value { return types.NewBool(b) }

// NewInt64 wraps an int64.
func NewInt64(i int64) Value { return types.NewInt64(i) }

// NewFloat64 wraps a float64.
func NewFloat64(f float64) Value { return types.NewFloat64(f) }

// NewString wraps a string.
func NewString(s string) Value { return types.NewString(s) }

// NewPointValue wraps a point.
func NewPointValue(p Point) Value { return types.NewPoint(p) }

// NewRectValue wraps a rectangle.
func NewRectValue(r Rect) Value { return types.NewRect(r) }

// NewPolygonValue wraps a polygon.
func NewPolygonValue(p *Polygon) Value { return types.NewPolygon(p) }

// NewIntervalValue wraps an interval.
func NewIntervalValue(iv Interval) Value { return types.NewInterval(iv) }

// Geometry types, re-exported for spatial join libraries and data.

// Geometry is the common interface of spatial keys.
type Geometry = geo.Geometry

// Point is a 2-D point.
type Point = geo.Point

// Rect is an axis-aligned rectangle (MBR).
type Rect = geo.Rect

// Polygon is a simple polygon.
type Polygon = geo.Polygon

// NewPolygon builds a polygon from its vertex ring.
func NewPolygon(ring []Point) *Polygon { return geo.NewPolygon(ring) }

// EmptyRect returns the identity element for MBR union.
func EmptyRect() Rect { return geo.EmptyRect() }

// Intersects is the exact geometric intersection predicate.
func Intersects(a, b Geometry) bool { return geo.Intersects(a, b) }

// Interval is a time interval in abstract ticks.
type Interval = interval.Interval

// LineString is an open polyline (a trajectory).
type LineString = geo.LineString

// NewLineString builds a polyline from its points.
func NewLineString(points []Point) *LineString { return geo.NewLineString(points) }

// NewLineStringValue wraps a polyline.
func NewLineStringValue(ls *LineString) Value { return types.NewLineString(ls) }
