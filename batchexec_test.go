// Batched-execution acceptance: the columnar hot path must be
// invisible to query semantics. Each example join runs with default
// batching and with WithBatchSize(1) — record-at-a-time framing, the
// pre-batching baseline — under chaos faults and a tiny memory budget
// (so shuffle, retry-resend, spill, and checkpoint paths all carry
// batch frames), and the result multisets must be identical.
package fudj_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"fudj"
	"fudj/internal/shell"
)

// batchChaosQueries projects ids (not COUNT) so multiset comparison
// sees every joined pair.
var batchChaosQueries = []struct {
	name string
	sql  string
}{
	{"spatial", `SELECT p.id, w.id FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`},
	{"interval", `SELECT n1.id, n2.id FROM nyctaxi n1, nyctaxi n2
		WHERE n1.vendor = 1 AND n2.vendor = 2
		AND overlapping_interval(n1.ride_interval, n2.ride_interval, 1000)`},
	{"textsim", `SELECT r1.id, r2.id FROM amazonreview r1, amazonreview r2
		WHERE r1.overall = 5 AND r2.overall = 4
		AND text_similarity_join(r1.review, r2.review, 0.7)`},
}

// rowKeys renders id-pair rows into sortable strings.
func rowKeys(t *testing.T, rows []fudj.Record) []string {
	t.Helper()
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%d|%d", r[0].Int64(), r[1].Int64())
	}
	sort.Strings(out)
	return out
}

func TestBatchedExecutionIdentity(t *testing.T) {
	db, err := shell.Setup(shell.Config{Nodes: 3, Cores: 2, Records: 150, LoadDemo: true})
	if err != nil {
		t.Fatal(err)
	}
	// Chaos + a tiny budget: crashes re-run tasks, corruption re-sends
	// batch frames, and the budget forces COMBINE spills — every
	// batch-framed surface is exercised on both arms.
	db.MustConfigure(
		fudj.WithFaults(&fudj.FaultConfig{Seed: 7, CrashProb: 0.15, CorruptProb: 0.05}),
		fudj.WithRetryPolicy(fudj.RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: 50 * time.Microsecond,
			MaxBackoff:  time.Millisecond,
		}),
		fudj.WithMemoryBudget(48<<10),
		fudj.WithCheckpoints(),
	)
	for _, q := range batchChaosQueries {
		t.Run(q.name, func(t *testing.T) {
			db.MustConfigure(fudj.WithBatchSize(0)) // default batching
			batched, err := db.Execute(q.sql)
			if err != nil {
				t.Fatalf("batched run: %v", err)
			}
			if len(batched.Rows) == 0 {
				t.Fatal("batched run produced no rows")
			}
			if batched.Join.Batches == 0 {
				t.Error("batched run encoded no columnar frames")
			}

			db.MustConfigure(fudj.WithBatchSize(1)) // record-at-a-time baseline
			baseline, err := db.Execute(q.sql)
			if err != nil {
				t.Fatalf("record-at-a-time run: %v", err)
			}
			got, want := rowKeys(t, batched.Rows), rowKeys(t, baseline.Rows)
			if len(got) != len(want) {
				t.Fatalf("batched %d rows, record-at-a-time %d rows", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d: batched %q, record-at-a-time %q", i, got[i], want[i])
				}
			}
		})
	}
}

func TestBatchMetricsSurfaced(t *testing.T) {
	db, err := shell.Setup(shell.Config{Nodes: 2, Cores: 2, Records: 80, LoadDemo: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(batchChaosQueries[0].sql)
	if err != nil {
		t.Fatal(err)
	}
	j := res.Join
	if j.Batches == 0 || j.BatchRows == 0 {
		t.Fatalf("batch counters empty: batches=%d rows=%d", j.Batches, j.BatchRows)
	}
	if j.BatchRows < j.Batches {
		t.Errorf("BatchRows %d < Batches %d: frames cannot be emptier than one row", j.BatchRows, j.Batches)
	}
	if rpb := j.RowsPerBatch(); rpb < 1 || rpb > 1024 {
		t.Errorf("RowsPerBatch() = %v, want within [1, 1024]", rpb)
	}
	if j.BatchPoolGets == 0 {
		t.Error("no scratch batches requested from the pool")
	}
	if pr := j.PoolReuse(); pr < 0 || pr > 1 {
		t.Errorf("PoolReuse() = %v, want within [0, 1]", pr)
	}
	// The registry view carries the same counters under batch.* names.
	if res.Metrics["batch.count"] != j.Batches {
		t.Errorf("metrics batch.count = %d, Join.Batches = %d", res.Metrics["batch.count"], j.Batches)
	}
	if res.Metrics["batch.rows"] != j.BatchRows {
		t.Errorf("metrics batch.rows = %d, Join.BatchRows = %d", res.Metrics["batch.rows"], j.BatchRows)
	}
}

func TestConfigureRejectsOpenOnlyOptions(t *testing.T) {
	db := fudj.MustOpen(fudj.WithCluster(2, 1))
	for _, opt := range []fudj.Option{
		fudj.WithConcurrencyLimit(2),
		fudj.WithQueueDepth(4),
		fudj.WithMemoryPool(1 << 20),
		fudj.WithTracing(),
		fudj.WithClock(nil),
	} {
		if err := db.Configure(opt); err == nil {
			t.Errorf("Configure accepted an open-only option: %#v", opt)
		}
	}
	// Runtime-settable options still apply.
	if err := db.Configure(fudj.WithBatchSize(16), fudj.WithMemoryBudget(1<<20), fudj.WithFaults(nil)); err != nil {
		t.Fatalf("Configure rejected runtime options: %v", err)
	}
}
