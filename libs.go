package fudj

import (
	"fudj/internal/datagen"
	"fudj/internal/joins/builtin"
	"fudj/internal/joins/distancejoin"
	"fudj/internal/joins/intervaljoin"
	"fudj/internal/joins/spatialjoin"
	"fudj/internal/joins/textsim"
	"fudj/internal/joins/trajjoin"
)

// The three reference join libraries from §V of the paper, ready to
// install into a DB, plus their hand-built operator twins and the
// synthetic dataset generators used by the experiment harness.

// SpatialLibrary returns the PBSM spatial join library
// ("spatialjoins"), with classes for the default duplicate-avoidance
// build, the Reference Point build, a duplicate-elimination build, and
// a no-dedup build.
func SpatialLibrary() *Library { return spatialjoin.Library() }

// TextSimilarityLibrary returns the prefix-filtering set-similarity
// join library ("flexiblejoins") with avoidance and elimination builds.
func TextSimilarityLibrary() *Library { return textsim.Library() }

// IntervalLibrary returns the overlapping-interval join library
// ("intervaljoins").
func IntervalLibrary() *Library { return intervaljoin.Library() }

// TrajectoryLibrary returns the trajectory closeness join library
// ("trajjoins"), a fifth example covering the trajectory join class
// the paper's related work surveys.
func TrajectoryLibrary() *Library { return trajjoin.Library() }

// DistanceLibrary returns the point distance join library
// ("distancejoins"), a kNN-style fourth example beyond the paper's
// three.
func DistanceLibrary() *Library { return distancejoin.Library() }

// Hand-built operators (the paper's built-in comparison arm) with the
// BuiltinJoinFunc signature, for DB.RegisterBuiltinJoin.
var (
	// BuiltinSpatialPBSM is the hand-built PBSM spatial join.
	BuiltinSpatialPBSM BuiltinJoinFunc = builtin.SpatialPBSM
	// BuiltinSpatialPlaneSweep is the advanced spatial operator with a
	// plane-sweep local join (§VII-F).
	BuiltinSpatialPlaneSweep BuiltinJoinFunc = builtin.SpatialPlaneSweep
	// BuiltinIntervalOIP is the hand-built overlapping-interval join.
	BuiltinIntervalOIP BuiltinJoinFunc = builtin.IntervalOIP
	// BuiltinSpatialINLJ is the indexed nested-loop spatial join from
	// the paper's introduction: broadcast + R-tree + probe.
	BuiltinSpatialINLJ BuiltinJoinFunc = builtin.SpatialINLJ
	// BuiltinTextSimilarity is the hand-built set-similarity join.
	BuiltinTextSimilarity BuiltinJoinFunc = builtin.TextSimilarity
)

// GeneratedDataset is a synthetic dataset with schema and metadata.
type GeneratedDataset = datagen.Dataset

// GenWildfires generates n clustered fire-report points.
func GenWildfires(seed int64, n int) *GeneratedDataset { return datagen.Wildfires(seed, n) }

// GenParks generates n heavy-tailed park polygons with tag strings.
func GenParks(seed int64, n int) *GeneratedDataset { return datagen.Parks(seed, n) }

// GenNYCTaxi generates n taxi rides with rush-hour interval bursts.
func GenNYCTaxi(seed int64, n int) *GeneratedDataset { return datagen.NYCTaxi(seed, n) }

// GenAmazonReview generates n Zipfian-vocabulary product reviews.
func GenAmazonReview(seed int64, n int) *GeneratedDataset { return datagen.AmazonReview(seed, n) }

// GenTrajectories generates n clustered random-walk trajectories.
func GenTrajectories(seed int64, n int) *GeneratedDataset { return datagen.Trajectories(seed, n) }

// LoadGenerated creates a dataset in db from a generated dataset,
// using the lowercase dataset name.
func LoadGenerated(db *DB, name string, ds *GeneratedDataset) error {
	return db.CreateDataset(name, ds.Schema, ds.Records)
}
