// Package fudj is the public API of this FUDJ implementation —
// Flexible User-Defined Distributed Joins (Sevim et al., ICDE 2024) —
// a framework that lets developers add new partition-based distributed
// join algorithms to a database engine by writing a handful of small
// functions instead of thousands of lines of engine code.
//
// # The programming model
//
// A join algorithm is a Spec: plain Go functions for the paper's three
// phases. SUMMARIZE (LocalAgg/GlobalAgg + Divide) scans both inputs and
// produces a partitioning plan; PARTITION (Assign) maps each record to
// one or more integer buckets; COMBINE (Match/Verify/Dedup) pairs up
// buckets, verifies candidate record pairs exactly, and suppresses the
// duplicates multi-assignment can create.
//
//	join := fudj.Wrap(fudj.Spec[K, K, S, P]{
//	    Name:         "my_join",
//	    NewSummary:   ...,
//	    LocalAggLeft: ...,
//	    GlobalAgg:    ...,
//	    Divide:       ...,
//	    AssignLeft:   ...,
//	    Verify:       ...,
//	})
//
// The same Join value runs in two ways: standalone on one machine for
// development and debugging (RunStandalone, §VI-D2 of the paper), and
// installed into the distributed engine via a Library and the CREATE
// JOIN statement, where the optimizer detects its name in query
// predicates and generates the full distributed plan (§VI-C).
//
// # The engine
//
//	db := fudj.MustOpen(fudj.WithCluster(4, 2))
//	db.CreateDataset("parks", schema, records)
//	db.InstallLibrary(lib)
//	db.Execute(`CREATE JOIN my_join(a: geometry, b: geometry, n: int)
//	            RETURNS boolean AS "pkg.MyJoin" AT mylib`)
//	res, err := db.Execute(`SELECT COUNT(*) FROM parks p, fires f
//	                        WHERE my_join(p.boundary, f.location, 64)`)
//
// The engine is a complete (if compact) distributed query processor: a
// SQL front end, a rule-based optimizer with predicate pushdown, the
// FUDJ rewrite, hash-join selection and self-join summary reuse, and a
// simulated shared-nothing cluster that serializes all cross-node
// traffic so network and serde costs are real.
//
// Three reference join libraries ship with the package — Spatial
// (PBSM), Text-similarity (prefix filtering), and Overlapping Intervals
// (OIPJoin-style) — together with hand-built operator twins used as the
// paper's built-in comparison arm.
package fudj

import (
	"fudj/internal/core"
)

// BucketID identifies one logical bucket produced by PARTITION.
type BucketID = core.BucketID

// Side distinguishes the two join inputs.
type Side = core.Side

// The two join sides.
const (
	Left  = core.Left
	Right = core.Right
)

// DedupMode selects duplicate handling for multi-assign joins.
type DedupMode = core.DedupMode

// Duplicate handling strategies (see core.DedupMode).
const (
	DedupNone        = core.DedupNone
	DedupAvoidance   = core.DedupAvoidance
	DedupCustom      = core.DedupCustom
	DedupElimination = core.DedupElimination
)

// Spec is the typed definition of a join algorithm; see core.Spec.
type Spec[KL, KR, S, P any] = core.Spec[KL, KR, S, P]

// Join is the engine-facing join contract produced by Wrap.
type Join = core.Join

// Descriptor carries a join's static optimizer-visible properties.
type Descriptor = core.Descriptor

// Library is an installable bundle of join algorithms.
type Library = core.Library

// Constructor builds a fresh Join instance per query.
type Constructor = core.Constructor

// StandaloneStats reports what a standalone execution did.
type StandaloneStats = core.Stats

// UDFError is a panic inside user-defined join code, converted into a
// structured error naming the join, phase, partition, and record.
type UDFError = core.UDFError

// Wrap validates a Spec and returns the engine-facing Join.
func Wrap[KL, KR, S, P any](spec Spec[KL, KR, S, P]) Join { return core.Wrap(spec) }

// NewLibrary creates an empty join library with the given name.
func NewLibrary(name string) *Library { return core.NewLibrary(name) }

// RunStandalone executes a join on one machine — the paper's
// single-machine prototype for developing and debugging new join
// algorithms before installing them into the engine.
func RunStandalone(j Join, left, right []any, params []any, emit func(l, r any)) (StandaloneStats, error) {
	return core.RunStandalone(j, left, right, params, emit)
}
