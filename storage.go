package fudj

import (
	"io"

	"fudj/internal/storage"
)

// Dataset persistence: the binary format the engine uses to save and
// reload datasets, plus a TSV importer for externally prepared data.

// SaveDataset writes a dataset from db to path in the binary format.
func SaveDataset(db *DB, name, path string) error {
	ds, err := db.Catalog().Dataset(name)
	if err != nil {
		return err
	}
	return storage.SaveFile(path, ds.Name, ds.Schema, ds.Records)
}

// LoadDataset reads a binary dataset file and creates it in db under
// the given name.
func LoadDataset(db *DB, name, path string) error {
	_, schema, recs, err := storage.LoadFile(path)
	if err != nil {
		return err
	}
	return db.CreateDataset(name, schema, recs)
}

// ImportTSV reads records in cmd/datagen's TSV layout against the
// provided schema and creates the dataset in db.
func ImportTSV(db *DB, name string, schema *Schema, r io.Reader) error {
	recs, err := storage.ReadTSV(r, schema)
	if err != nil {
		return err
	}
	return db.CreateDataset(name, schema, recs)
}
